#include "core/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <deque>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <vector>

#include "lsq/disambig.hpp"
#include "obs/interval.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "stats/stats.hpp"

namespace bsp {

namespace {

// Deadlock watchdog: abort a run if nothing commits for this many cycles.
constexpr Cycle kWatchdogCycles = 100000;

// Memory ports into the L1 D-cache (load accesses started per cycle).
constexpr unsigned kDCachePorts = 2;

// Classes whose execution can be decomposed into per-slice micro-ops.
bool is_sliceable(ExecClass cls) {
  switch (cls) {
    case ExecClass::Logic:
    case ExecClass::Add:
    case ExecClass::ShiftLeft:
    case ExecClass::ShiftRight:
    case ExecClass::Compare:
    case ExecClass::MfHiLo:
    case ExecClass::Load:
    case ExecClass::Store:
    case ExecClass::BranchEq:
    case ExecClass::BranchSign:
      return true;
    case ExecClass::Mul:
    case ExecClass::Div:
    case ExecClass::Jump:
    case ExecClass::JumpReg:
    case ExecClass::Syscall:
    case ExecClass::FpAlu:
    case ExecClass::FpMul:
    case ExecClass::FpDiv:
    case ExecClass::FpSqrt:
    case ExecClass::FpCompare:
    case ExecClass::FpBranch:
      return false;  // FP executes on full-collect units (paper §6)
  }
  return false;
}

bool uses_fp_mul_div_unit(ExecClass cls) {
  return cls == ExecClass::FpMul || cls == ExecClass::FpDiv ||
         cls == ExecClass::FpSqrt;
}

bool uses_fp_alu(ExecClass cls) {
  return cls == ExecClass::FpAlu || cls == ExecClass::FpCompare ||
         cls == ExecClass::FpBranch;
}

}  // namespace

struct Simulator::Impl {
  // --- construction ---------------------------------------------------------

  Impl(const MachineConfig& config, const Program& program)
      : cfg(config),
        core(cfg.core),
        geom(core.slice_geometry()),
        sliced_sched(core.has(Technique::PartialBypass)),
        prog(program),
        oracle(program),
        checker(program),
        predictor(cfg.branch),
        mem(cfg.memory),
        ruu(core.ruu_entries),
        op_token(core.ruu_entries),
        need_masks(core.ruu_entries),
        waiters(core.ruu_entries),
        consumers(core.ruu_entries),
        relax_queued(core.ruu_entries, 0),
        ifq_capacity(std::max<unsigned>(32, 8 * core.fetch_width)) {
    for (auto& t : op_token) t.fill(0);
    // Pre-size the per-entry edge lists and scheduler buffers: dependence
    // fan-out is small in practice, and reserving here keeps the steady
    // state free of vector growth on the dispatch/wakeup hot paths.
    for (auto& c : consumers) c.reserve(8);
    for (auto& w : waiters) w.reserve(8);
    for (auto& s : wheel) s.reserve(4);
    pending.reserve(64);
    cand_scratch.reserve(64);
    wake_scratch.reserve(16);
    branch_watch.reserve(64);
    rename.fill(ProducerRef{});
    fetch_pc = program.entry;
    predecoded.reserve(prog.text.size());
    for (const u32 raw : prog.text) predecoded.push_back(decode(raw));
  }

  const MachineConfig cfg;
  const CoreConfig& core;
  const SliceGeometry geom;
  const bool sliced_sched;
  Program prog;

  Emulator oracle;   // steps at dispatch: supplies values & outcomes
  Emulator checker;  // steps at commit: co-simulation reference
  FrontEndPredictor predictor;
  MemoryHierarchy mem;

  // RUU: circular buffer, `head` = oldest, `count` entries in flight.
  std::vector<RuuEntry> ruu;
  unsigned ruu_head = 0;
  unsigned ruu_count = 0;

  // --- event-driven scheduler state ----------------------------------------
  // Instead of walking the whole RUU every cycle, each unselected slice-op
  // lives in exactly one of three places: a time-indexed wakeup bucket (its
  // operand-ready cycle is known), a producer's waiter list (some operand
  // time is still undefined), or `pending` (ready this cycle but not yet
  // selected — e.g. blocked on an issue slot or a busy unit). References are
  // validated lazily: an (index, seq, token) triple that no longer matches
  // is a dead ref and is dropped on sight, so squash/commit/replay never
  // have to search the queues.
  struct OpRef {
    unsigned idx;     // RUU index
    u64 seq;          // entry incarnation
    unsigned op_idx;  // slice-op within the entry
    u32 token;        // scheduling incarnation of that op
  };
  struct ConsumerRef {
    unsigned idx;
    u64 seq;
  };

  // Per-op scheduling incarnation: bumped whenever the op is (re)queued or
  // selected, invalidating any refs still floating in the queues.
  std::vector<std::array<u32, kMaxSlices>> op_token;
  // Per-op source-need masks ([idx][op_idx][which]), precomputed at dispatch:
  // they depend only on (opcode, slice order, geometry), all fixed for the
  // entry's lifetime, and op_ready_time() re-derives them often enough on the
  // wakeup path to show up in profiles.
  std::vector<std::array<std::array<u32, 3>, kMaxSlices>> need_masks;
  // Producer entry -> ops blocked on one of its still-undefined times.
  // Consumed (and cleared) whenever the producer publishes a new time.
  std::vector<std::vector<OpRef>> waiters;
  // Producer entry -> dependent entries, registered at rename (plus the
  // store -> forwarded-load edges added when a forward is recorded). These
  // persist for the producer's lifetime: selective replay walks them to
  // revert only the transitive dependents of a re-timed value.
  std::vector<std::vector<ConsumerRef>> consumers;
  // Ops whose computed ready cycle is in the future: a timing wheel over the
  // next kWheelSize cycles (slot = cycle mod size; every entry's cycle lies
  // in (now, now + kWheelSize) so the slot is unambiguous), with a summary
  // bitmap for O(1)-ish next-event queries and a spill map for the rare
  // beyond-horizon wakeups. Slot vectors keep their capacity across reuse,
  // so the steady state allocates nothing.
  static constexpr unsigned kWheelBits = 10;
  static constexpr Cycle kWheelSize = Cycle{1} << kWheelBits;
  static constexpr unsigned kWheelWords = kWheelSize / 64;
  std::array<std::vector<OpRef>, kWheelSize> wheel;
  std::array<u64, kWheelWords> wheel_bits{};
  u64 wheel_count = 0;
  std::map<Cycle, std::vector<OpRef>> wake_far;
  // Ops ready at (or before) the current cycle, awaiting selection.
  std::vector<OpRef> pending;
  // Reused scratch buffers (capacity recycles; see wake_waiters/select).
  std::vector<OpRef> wake_scratch;
  std::vector<OpRef> cand_scratch;
  std::vector<StoreView> views_scratch;
  // Future cycles at which *something* can happen (op completions, load data
  // returns, verification points). Consulted by the idle-cycle skip. Stored
  // as a cycle bitmap over the same wheel horizon (timers carry no payload,
  // so a set bit per cycle suffices and duplicate arms are free); the run
  // loop clears each cycle's bit as `now` reaches it, which keeps every set
  // bit strictly in the future and the bitmap scan exact. Rare arms beyond
  // the horizon spill to the ordered set.
  std::array<u64, kWheelWords> timer_bits{};
  u64 timer_count = 0;
  std::set<Cycle> timer_far;

  void arm_timer(Cycle c) {
    if (c <= now) return;  // already due: the current cycle handles it
    if (c - now < kWheelSize) {
      const unsigned slot = static_cast<unsigned>(c & (kWheelSize - 1));
      const u64 bit = u64{1} << (slot & 63);
      timer_count += !(timer_bits[slot >> 6] & bit);
      timer_bits[slot >> 6] |= bit;
    } else {
      timer_far.insert(c);
    }
  }

  // First armed timer cycle > now (kNever if none); same scan as
  // wheel_next().
  Cycle timer_next() const {
    if (!timer_count) return kNever;
    const unsigned mask = kWheelSize - 1;
    const unsigned start = static_cast<unsigned>((now + 1) & mask);
    for (unsigned step = 0; step <= kWheelWords; ++step) {
      const unsigned word = ((start >> 6) + step) & (kWheelWords - 1);
      u64 bits = timer_bits[word];
      if (step == 0) bits &= ~u64{0} << (start & 63);
      if (bits) {
        const unsigned slot =
            word * 64 + static_cast<unsigned>(std::countr_zero(bits));
        return now + 1 + ((slot - start) & mask);
      }
    }
    return kNever;
  }
  // In-flight correct-path conditional branches / jr (dispatch order). The
  // resolve scan walks this short list instead of the whole RUU; dead and
  // committed entries are pruned lazily.
  std::vector<ConsumerRef> branch_watch;
  // Selective-replay worklist (entry indices) + membership flags.
  std::vector<unsigned> relax_work;
  std::vector<u8> relax_queued;
  // Bumped whenever replay regresses any recorded time; tells the in-cycle
  // store-view cache in memory_progress() to rebuild.
  u64 sched_epoch = 0;
  // Set by any state mutation this cycle; a fully quiet cycle with no
  // same-cycle retry pending is when the idle skip may fast-forward.
  bool cycle_activity = false;
  // A load was ready to access the cache but lost the port race: it retries
  // next cycle, so the idle skip must not jump.
  bool retry_this_cycle = false;
  // When dispatch stops because the front slot is still in flight (rather
  // than for lack of RUU/LSQ space), the cycle it becomes dispatchable.
  Cycle dispatch_blocked_until = kNever;

  // Unified LSQ: RUU indices of in-flight memory ops, oldest first.
  std::deque<int> lsq;

  std::array<ProducerRef, kNumRenameRegs> rename;

  // Front end.
  std::deque<FetchSlot> fetch_q;
  const unsigned ifq_capacity;
  u32 fetch_pc = 0;
  Cycle fetch_stall_until = 0;
  bool wrong_path = false;
  bool halted = false;  // exit syscall dispatched: stop fetching

  Cycle now = 0;
  u64 next_seq = 1;
  Cycle mul_div_busy_until = 0;
  Cycle fp_mul_div_busy_until = 0;

  // Optional detailed histograms.
  std::unique_ptr<DetailedStats> detail;

  // Observability: every pipeline event funnels through emit() to the
  // attached sinks (obs/trace.hpp). `obs_on` keeps each emission site to a
  // single predictable branch when nothing is attached; set_pipe_trace()
  // is now sugar for attaching an owned PipeTextSink.
  std::vector<obs::TraceSink*> sinks;
  bool obs_on = false;
  std::unique_ptr<obs::PipeTextSink> owned_pipe_sink;
  void emit(const obs::TraceEvent& ev) {
    for (obs::TraceSink* s : sinks) s->event(ev);
  }
  // CacheVerify outcome codes are documented in obs/trace.hpp.
  void emit_verify(const RuuEntry& e, u64 outcome, Cycle data, bool replay) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::CacheVerify;
    ev.cycle = now;
    ev.seq = e.seq;
    ev.pc = e.pc;
    ev.a = data;
    ev.b = outcome;
    ev.flags = replay ? obs::kFlagReplay : 0u;
    emit(ev);
  }

  // Interval time-series sampling (obs/interval.hpp); not owned.
  obs::IntervalSampler* sampler = nullptr;

  // Host-phase profiling accumulator (opt-in: the per-phase clock reads
  // cost real time per simulated cycle). Copied into stats.host_profile
  // when run() finishes.
  bool host_profile_on = false;
  obs::HostProfile hprof;
  using HpClock = std::chrono::steady_clock;
  static void hp_take(HpClock::time_point& t, double& acc) {
    const HpClock::time_point n = HpClock::now();
    acc += std::chrono::duration<double>(n - t).count();
    t = n;
  }

  SimStats stats;
  std::string error;
  bool exited = false;
  int exit_code = 0;
  Cycle last_commit_cycle = 0;

  // ---------------------------------------------------------------------------
  // small helpers
  // ---------------------------------------------------------------------------

  unsigned ruu_index(unsigned pos) const {
    return (ruu_head + pos) % core.ruu_entries;
  }
  RuuEntry& entry_at(unsigned pos) { return ruu[ruu_index(pos)]; }
  RuuEntry& youngest() { return entry_at(ruu_count - 1); }

  void fail(const std::string& why) {
    if (error.empty()) error = "cycle " + std::to_string(now) + ": " + why;
  }

  // When each slice of `e`'s *result* becomes available.
  Cycle result_slice_time(const RuuEntry& e, unsigned slice) const {
    if (e.is_load() && !e.inst.is_store()) return e.data_cycle;
    switch (e.inst.cls()) {
      case ExecClass::Compare:
        return e.last_op_done();  // sign/borrow defined only at the end
      default:
        break;
    }
    if (e.num_ops == 1) return e.ops[0].done_cycle;
    // Narrow-width extension: a result that is just the sign extension of
    // its low slice releases every slice the moment the low slice exists
    // (its significance tag says the rest is all-0s/all-1s).
    if (slice > 0 && e.narrow_result && core.has(Technique::NarrowWidth))
      return e.ops[0].done_cycle;
    return e.ops[slice].done_cycle;
  }

  // Availability of slice `k` of source operand `which` of entry `e`.
  Cycle source_slice_time(const RuuEntry& e, unsigned which,
                          unsigned k) const {
    const ProducerRef& ref = e.sources[which];
    if (ref.from_regfile()) return 0;
    const RuuEntry& p = ruu[ref.index];
    if (!p.valid || p.seq != ref.seq) return 0;  // producer committed
    return result_slice_time(p, k);
  }

  // Source-slice requirement for op `op_idx` of entry `e` on source `which`.
  u32 source_need_mask(const RuuEntry& e, unsigned which,
                       unsigned op_idx) const {
    const ExecClass cls = e.inst.cls();
    if (e.order == SliceOrder::Collect) return low_mask(geom.count);
    if (which == 0 && reads_amount_slice0(e.inst.op))
      return 0x1;  // variable-shift amount lives in the low slice of rs
    if (which == 2) {
      // HI/LO source: produced atomically by mul/div; positional need.
      return u32{1} << op_idx;
    }
    return needed_source_slices(cls, op_idx, geom);
  }

  // Latest cycle at which every operand slice op `op_idx` needs exists; or
  // kNever if some requirement is still unproduced. In the kNever case
  // `blocker` (when given) receives the RUU index of an entry whose next
  // published time warrants re-evaluating this op: the producer of the
  // undefined source slice, or the op's own entry for an inter-slice chain
  // dependence. Re-evaluation on every advance of that entry is what makes
  // waiter-list wakeup complete: each recomputation either yields a finite
  // time or re-registers on the next still-undefined blocker.
  Cycle op_ready_time(const RuuEntry& e, unsigned op_idx,
                      int* blocker = nullptr) const {
    Cycle ready = 0;
    const auto& masks = need_masks[static_cast<unsigned>(&e - ruu.data())];
    for (unsigned which = 0; which < 3; ++which) {
      const ProducerRef& ref = e.sources[which];
      if (ref.from_regfile()) continue;  // regfile: ready at 0
      const RuuEntry& p = ruu[ref.index];
      if (!p.valid || p.seq != ref.seq) continue;  // producer committed
      const u32 mask = masks[op_idx][which];
      if (!mask) continue;
      // Producer resolved once per source; slice-uniform result classes
      // (loads, full-collect, compares) short-circuit the per-slice walk.
      Cycle t;
      if (p.is_load() && !p.inst.is_store()) {
        t = p.data_cycle;
      } else if (p.inst.cls() == ExecClass::Compare) {
        t = p.last_op_done();
      } else if (p.num_ops == 1) {
        t = p.ops[0].done_cycle;
      } else {
        t = 0;
        const bool narrow =
            p.narrow_result && core.has(Technique::NarrowWidth);
        for (u32 m = mask; m && t != kNever; m &= m - 1) {
          const unsigned k = static_cast<unsigned>(std::countr_zero(m));
          t = std::max(t, (k > 0 && narrow) ? p.ops[0].done_cycle
                                            : p.ops[k].done_cycle);
        }
      }
      if (t == kNever) {
        if (blocker) *blocker = ref.index;
        return kNever;
      }
      ready = std::max(ready, t);
    }
    // Inter-slice chain (carry / shifted-in bits / forced in-order slices).
    if (e.num_ops > 1) {
      int prev = -1;
      if (e.order == SliceOrder::LowToHigh)
        prev = static_cast<int>(op_idx) - 1;
      else if (e.order == SliceOrder::HighToLow)
        prev = static_cast<int>(op_idx) + 1;
      if (prev >= 0 && prev < static_cast<int>(e.num_ops)) {
        const Cycle t = e.ops[prev].done_cycle;
        if (t == kNever) {
          if (blocker) *blocker = static_cast<int>(&e - ruu.data());
          return kNever;
        }
        ready = std::max(ready, t);
      }
    }
    // Sch1..RF2 depth: nothing selects before this.
    ready = std::max(ready, e.dispatch_cycle + core.issue_to_exec_stages);
    return ready;
  }

  // ---------------------------------------------------------------------------
  // event-driven scheduler plumbing
  // ---------------------------------------------------------------------------

  // Resolves an OpRef if it is still live: entry incarnation, op slot and
  // scheduling token must all match and the op must still be unselected.
  RuuEntry* ref_entry(const OpRef& r) {
    RuuEntry& e = ruu[r.idx];
    if (!e.valid || e.seq != r.seq) return nullptr;
    if (r.op_idx >= e.num_ops) return nullptr;
    if (op_token[r.idx][r.op_idx] != r.token) return nullptr;
    if (e.ops[r.op_idx].selected()) return nullptr;
    return &e;
  }

  // (Re)tracks an unselected op in exactly one scheduler structure, chosen
  // by its current ready time. Bumps the op's token so any older refs die.
  void queue_op(unsigned idx, unsigned op_idx) {
    RuuEntry& e = ruu[idx];
    const u32 tok = ++op_token[idx][op_idx];
    int blocker = -1;
    const Cycle ready = op_ready_time(e, op_idx, &blocker);
    const OpRef ref{idx, e.seq, op_idx, tok};
    if (ready == kNever) {
      assert(blocker >= 0);
      waiters[static_cast<unsigned>(blocker)].push_back(ref);
    } else if (ready <= now) {
      pending.push_back(ref);
    } else if (ready - now < kWheelSize) {
      const unsigned slot = static_cast<unsigned>(ready & (kWheelSize - 1));
      wheel[slot].push_back(ref);
      wheel_bits[slot >> 6] |= u64{1} << (slot & 63);
      ++wheel_count;
    } else {
      wake_far[ready].push_back(ref);
    }
  }

  // First cycle > now with a populated wheel slot (kNever if none): scans
  // the summary bitmap starting just past now's slot; a set bit at wrapped
  // distance d means cycle now + 1 + d.
  Cycle wheel_next() const {
    if (!wheel_count) return kNever;
    const unsigned mask = kWheelSize - 1;
    const unsigned start = static_cast<unsigned>((now + 1) & mask);
    for (unsigned step = 0; step <= kWheelWords; ++step) {
      const unsigned word = ((start >> 6) + step) & (kWheelWords - 1);
      u64 bits = wheel_bits[word];
      if (step == 0) bits &= ~u64{0} << (start & 63);
      if (bits) {
        const unsigned slot =
            word * 64 + static_cast<unsigned>(std::countr_zero(bits));
        return now + 1 + ((slot - start) & mask);
      }
    }
    return kNever;
  }

  // Entry `idx` published a new time (an op was selected, or load data was
  // scheduled): re-evaluate every op blocked on it.
  void wake_waiters(unsigned idx) {
    if (waiters[idx].empty()) return;
    // Swap through the scratch buffer (re-registration may push onto the
    // same list mid-walk); capacities recycle between the two vectors, so
    // the steady state allocates nothing.
    wake_scratch.clear();
    wake_scratch.swap(waiters[idx]);
    for (const OpRef& r : wake_scratch)
      if (ref_entry(r)) queue_op(r.idx, r.op_idx);
  }

  // Number of low effective-address bits produced by cycle `c`.
  unsigned addr_bits_known_at(const RuuEntry& e, Cycle c) const {
    if (e.order == SliceOrder::Collect)
      return (e.ops[0].done_cycle != kNever && e.ops[0].done_cycle <= c) ? 32
                                                                         : 0;
    unsigned n = 0;
    while (n < e.num_ops && e.ops[n].done_cycle != kNever &&
           e.ops[n].done_cycle <= c)
      ++n;
    return n * geom.width();
  }

  // Cycle the full effective address exists (kNever if not yet).
  Cycle agen_complete_cycle(const RuuEntry& e) const { return e.last_op_done(); }

  // Cycle the cache can consume the full effective address. With
  // sum-addressed memory the base+offset add happens inside the array
  // decoder, so the access overlaps the agen ops themselves: the address is
  // usable the cycle the last agen op is *selected*.
  Cycle full_addr_cycle(const RuuEntry& e) const {
    if (!core.has(Technique::SumAddressed)) return agen_complete_cycle(e);
    Cycle m = 0;
    for (unsigned i = 0; i < e.num_ops; ++i) {
      if (!e.ops[i].selected()) return kNever;
      m = std::max(m, e.ops[i].select_cycle);
    }
    return m;
  }

  // When all slices of a store's *data* operand are available (kNever if the
  // producer has not finished).
  Cycle store_data_time(const RuuEntry& e) const {
    Cycle t = 0;
    for (unsigned k = 0; k < geom.count; ++k) {
      const Cycle s = source_slice_time(e, 1, k);
      if (s == kNever) return kNever;
      t = std::max(t, s);
    }
    return t;
  }

  // ---------------------------------------------------------------------------
  // dispatch-time setup
  // ---------------------------------------------------------------------------

  void init_entry_ops(RuuEntry& e) {
    const ExecClass cls = e.inst.cls();
    e.order = slice_order(cls, core);
    const bool multi = sliced_sched && is_sliceable(cls);
    e.num_ops = multi ? geom.count : 1;
    switch (cls) {
      case ExecClass::Mul:
        e.op_latency = core.mul_latency;
        break;
      case ExecClass::Div:
        e.op_latency = core.div_latency;
        break;
      case ExecClass::Jump:
      case ExecClass::JumpReg:
      case ExecClass::Syscall:
        // Redirect/serialising ops: a single cycle once the (full) operand
        // exists — these do not flow through the sliced ALU pipeline.
        e.op_latency = sliced_sched ? 1 : core.slices;
        break;
      case ExecClass::FpAlu:
      case ExecClass::FpCompare:
        e.op_latency = core.fp_alu_latency;
        break;
      case ExecClass::FpBranch:
        e.op_latency = 1;  // reads one condition bit
        break;
      case ExecClass::FpMul:
        e.op_latency = core.fp_mul_latency;
        break;
      case ExecClass::FpDiv:
        e.op_latency = core.fp_div_latency;
        break;
      case ExecClass::FpSqrt:
        e.op_latency = core.fp_sqrt_latency;
        break;
      default:
        e.op_latency = multi ? 1 : core.slices;
        break;
    }
    e.reset_ops();
  }

  ProducerRef rename_source(unsigned reg) const {
    if (reg == 0) return ProducerRef{};  // $zero is always ready
    return rename[reg];
  }

  void dispatch_one(const FetchSlot& slot) {
    const unsigned idx = ruu_index(ruu_count);
    RuuEntry& e = ruu[idx];
    e = RuuEntry{};
    // This slot's previous occupant is gone: drop its dependence bookkeeping.
    // (Refs *to* the old occupant elsewhere die via their seq checks.)
    consumers[idx].clear();
    waiters[idx].clear();
    e.valid = true;
    e.seq = next_seq++;
    e.pc = slot.pc;
    e.inst = slot.inst;
    e.dispatch_cycle = now;
    e.predicted_taken = slot.predicted_taken;
    e.predicted_target = slot.predicted_target;
    e.history_checkpoint = slot.history_checkpoint;

    const bool correct_path = !wrong_path && slot.pc == oracle.pc();
    e.bogus = !correct_path;
    if (correct_path) {
      const StepResult sr = oracle.step(&e.oracle);
      if (sr.kind == StepResult::Kind::Fault) {
        fail("oracle fault: " + sr.fault);
        return;
      }
      // Re-decode from the oracle record (identical, but keeps `inst`
      // authoritative even if fetch raced a (unsupported) code write).
      e.inst = e.oracle.inst;
      if (oracle.exited()) halted = true;

      const u32 predicted_next =
          slot.predicted_taken ? slot.predicted_target : slot.pc + 4;
      if (e.inst.is_control() && predicted_next != e.oracle.next_pc) {
        e.mispredicted = true;
        wrong_path = true;
      }
      if (e.inst.cls() == ExecClass::Jump) {
        // Direct jumps carry their target; resolved at dispatch.
        e.resolved = true;
        e.resolve_cycle = now;
      }
    } else {
      ++stats.bogus_dispatched;
    }

    init_entry_ops(e);

    if (!e.bogus && e.inst.dest() != 0 && !e.inst.is_fp() &&
        core.has(Technique::NarrowWidth)) {
      const u32 v = e.oracle.dest_value;
      e.narrow_result = sign_extend(v & low_mask(geom.width()),
                                    geom.width()) == v;
      if (e.narrow_result) ++stats.narrow_operands;
    }

    // Source renaming (extended ids: GPR/HI/LO/FP/FCC).
    e.sources[0] = rename_source(e.inst.src1_ext());
    e.sources[1] = rename_source(e.inst.src2_ext());
    if (e.inst.reads_hi_lo())
      e.sources[2] = rename[e.inst.op == Op::MFHI ? kHiReg : kLoReg];

    // Register this entry on each in-flight producer's consumer list: the
    // selective-replay cascade walks these edges instead of the whole RUU.
    for (const ProducerRef& src : e.sources)
      if (src.index >= 0)
        consumers[static_cast<unsigned>(src.index)].push_back(
            ConsumerRef{idx, e.seq});

    // Destination renaming (wrong-path results feed wrong-path consumers),
    // saving the displaced mappings for O(squashed) recovery.
    const unsigned dest = e.inst.dest_ext();
    if (dest != 0) {
      e.prev_dest = rename[dest];
      rename[dest] = ProducerRef{static_cast<int>(idx), e.seq};
    }
    if (e.inst.writes_hi_lo()) {
      e.prev_hi = rename[kHiReg];
      e.prev_lo = rename[kLoReg];
      rename[kHiReg] = ProducerRef{static_cast<int>(idx), e.seq};
      rename[kLoReg] = ProducerRef{static_cast<int>(idx), e.seq};
    }

    if (e.inst.is_mem()) lsq.push_back(static_cast<int>(idx));
    if (!e.bogus &&
        (e.inst.is_cond_branch() || e.inst.cls() == ExecClass::JumpReg))
      branch_watch.push_back(ConsumerRef{idx, e.seq});

    // Hand every slice-op to the scheduler queues, with its source-need
    // masks precomputed (fixed once the entry's shape is known).
    for (unsigned i = 0; i < e.num_ops; ++i) {
      for (unsigned which = 0; which < 3; ++which)
        need_masks[idx][i][which] = source_need_mask(e, which, i);
      queue_op(idx, i);
    }

    ++ruu_count;
    ++stats.dispatched;
    cycle_activity = true;

    if (obs_on) {
      const std::string dis = disassemble(e.inst, e.pc);
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::Dispatch;
      ev.cycle = now;
      ev.seq = e.seq;
      ev.pc = e.pc;
      ev.flags = (e.bogus ? obs::kFlagBogus : 0u) |
                 (e.mispredicted ? obs::kFlagMispredicted : 0u);
      ev.text = dis.c_str();
      emit(ev);
    }
  }

  void dispatch() {
    dispatch_blocked_until = kNever;
    unsigned n = 0;
    while (n < core.fetch_width && !fetch_q.empty()) {
      const FetchSlot& slot = fetch_q.front();
      if (slot.dispatch_ready > now) {
        // Still in the front end: the idle skip may jump to this cycle.
        // (When dispatch stops for lack of RUU/LSQ space instead, the
        // unblocking commit is already covered by the timer set.)
        dispatch_blocked_until = slot.dispatch_ready;
        break;
      }
      if (ruu_count >= core.ruu_entries) break;
      if (slot.inst.is_mem() && lsq.size() >= core.lsq_entries) break;
      if (halted) {
        // Exit syscall already dispatched: drop drained slots.
        fetch_q.pop_front();
        cycle_activity = true;
        continue;
      }
      dispatch_one(slot);
      fetch_q.pop_front();
      ++n;
      if (!error.empty()) return;
    }
  }

  // ---------------------------------------------------------------------------
  // fetch
  // ---------------------------------------------------------------------------

  // Text predecoded once at construction (the image is immutable here);
  // decoding per fetch slot per cycle was ~25% of whole-run profiles.
  std::vector<std::optional<DecodedInst>> predecoded;

  const DecodedInst* fetch_decode(u32 pc) const {
    if (pc < prog.text_base || pc >= prog.text_end() || pc % 4 != 0)
      return nullptr;
    const auto& d = predecoded[(pc - prog.text_base) / 4];
    return d ? &*d : nullptr;
  }

  void fetch() {
    if (halted || now < fetch_stall_until) return;
    if (fetch_q.size() >= ifq_capacity) return;

    const unsigned icache_lat = mem.fetch_latency(fetch_pc);
    Cycle ready = now + core.front_end_stages;
    if (icache_lat > cfg.memory.l1i_latency) {
      // I$ miss: the group arrives late and fetch stalls for the duration.
      ready += icache_lat - cfg.memory.l1i_latency;
      fetch_stall_until = now + (icache_lat - cfg.memory.l1i_latency);
    }

    for (unsigned i = 0; i < core.fetch_width; ++i) {
      FetchSlot slot;
      slot.pc = fetch_pc;
      slot.dispatch_ready = ready;
      const DecodedInst* inst = fetch_decode(fetch_pc);
      slot.inst = inst ? *inst : make_nop();  // off-the-end wrong path
      cycle_activity = true;
      if (slot.inst.is_control()) {
        const BranchPrediction p = predictor.predict(slot.pc, slot.inst);
        slot.predicted_taken = p.taken;
        slot.predicted_target = p.target;
        slot.history_checkpoint = p.history_checkpoint;
        fetch_q.push_back(slot);
        if (p.taken && p.target != slot.pc + 4) {
          fetch_pc = p.target;
          break;  // group ends at a taken branch
        }
        fetch_pc = slot.pc + 4;
      } else {
        fetch_q.push_back(slot);
        fetch_pc += 4;
      }
    }
  }

  // ---------------------------------------------------------------------------
  // select & execute
  // ---------------------------------------------------------------------------

  void select_and_execute() {
    // Per-slice-datapath issue slots this cycle. Unsliced machines and
    // collect ops use datapath 0; FP ops use their own unit pool.
    std::array<unsigned, kMaxSlices> slots{};
    unsigned fp_alu_used = 0;
    const unsigned per_slice_limit = std::min(core.issue_width, core.int_alus);

    // Pull every op whose scheduled wake cycle has arrived into `pending`.
    // (Wheel slots strictly between skipped cycles are empty by construction
    // of the idle skip, so draining just now's slot is complete.)
    if (wheel_count) {
      const unsigned slot = static_cast<unsigned>(now & (kWheelSize - 1));
      std::vector<OpRef>& bucket = wheel[slot];
      if (!bucket.empty()) {
        pending.insert(pending.end(), bucket.begin(), bucket.end());
        wheel_count -= bucket.size();
        bucket.clear();
        wheel_bits[slot >> 6] &= ~(u64{1} << (slot & 63));
      }
    }
    while (!wake_far.empty() && wake_far.begin()->first <= now) {
      auto bucket = wake_far.begin();
      pending.insert(pending.end(), bucket->second.begin(),
                     bucket->second.end());
      wake_far.erase(bucket);
    }
    if (pending.empty()) return;

    // Select in the order the scan-based scheduler examined ops: oldest
    // entry first, then slice visit order within the entry. Same-cycle
    // selections never make *other* ops ready this same cycle (op latency is
    // >= 1), so sorting the candidate set up front is exact.
    std::vector<OpRef>& cands = cand_scratch;
    cands.clear();
    cands.swap(pending);
    std::sort(cands.begin(), cands.end(),
              [this](const OpRef& a, const OpRef& b) {
                if (a.seq != b.seq) return a.seq < b.seq;
                const RuuEntry& ea = ruu[a.idx];
                const RuuEntry& eb = ruu[b.idx];
                return slice_visit_pos(ea.order, ea.num_ops, a.op_idx) <
                       slice_visit_pos(eb.order, eb.num_ops, b.op_idx);
              });

    for (const OpRef& r : cands) {
      RuuEntry* pe = ref_entry(r);
      if (!pe) continue;  // squashed / committed / requeued since
      RuuEntry& e = *pe;
      const unsigned op_idx = r.op_idx;
      SliceOp& op = e.ops[op_idx];
      const ExecClass cls = e.inst.cls();
      const bool fp_unit = uses_fp_alu(cls) || uses_fp_mul_div_unit(cls);

      // Issue-slot limit is checked before readiness, as in the scan.
      const unsigned datapath = e.num_ops > 1 ? op_idx : 0;
      if (!fp_unit && slots[datapath] >= per_slice_limit) {
        pending.push_back(r);  // slot-blocked: stays ready for next cycle
        continue;
      }

      // Re-derive readiness: a replay may have regressed an operand since
      // this ref was queued. (Times only move later, never earlier, so an op
      // can need requeueing but never selection *earlier* than its ref.)
      const Cycle ready = op_ready_time(e, op_idx);
      if (ready == kNever || ready > now) {
        queue_op(r.idx, op_idx);
        continue;
      }

      // Structural hazards: single unpipelined integer and FP
      // mul/div(/sqrt) units; a pool of `fp_alus` FP ALUs.
      if (cls == ExecClass::Mul || cls == ExecClass::Div) {
        if (now < mul_div_busy_until) {
          pending.push_back(r);
          continue;
        }
        mul_div_busy_until = now + e.op_latency;
      }
      if (uses_fp_mul_div_unit(cls)) {
        if (now < fp_mul_div_busy_until) {
          pending.push_back(r);
          continue;
        }
        fp_mul_div_busy_until = now + e.op_latency;
      }
      if (uses_fp_alu(cls)) {
        if (fp_alu_used >= core.fp_alus) {
          pending.push_back(r);
          continue;
        }
        ++fp_alu_used;
      }

      op.select_cycle = now;
      op.done_cycle = now + e.op_latency;
      ++op_token[r.idx][op_idx];  // selected: retire the pending-queue ref
      if (!fp_unit) ++slots[datapath];
      arm_timer(op.done_cycle);
      cycle_activity = true;
      // A newly defined done time may unblock ops waiting on this entry.
      wake_waiters(r.idx);
      if (obs_on) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::OpSelect;
        ev.cycle = now;
        ev.seq = e.seq;
        ev.pc = e.pc;
        ev.op_idx = op_idx;
        ev.a = op.done_cycle;
        ev.flags = e.num_ops > 1 ? obs::kFlagMultiOp : 0u;
        emit(ev);
      }
    }
  }

  // ---------------------------------------------------------------------------
  // memory pipeline (loads & stores)
  // ---------------------------------------------------------------------------

  // View of the store at LSQ slot `slot` as the disambiguator sees it now.
  StoreView store_view_of(std::size_t slot) const {
    const RuuEntry& s = ruu[static_cast<unsigned>(lsq[slot])];
    StoreView v;
    v.id = lsq[slot];
    if (s.bogus) {
      v.addr_known_bits = 0;  // wrong-path store: address never produced
    } else {
      v.addr_known_bits = addr_bits_known_at(s, now);
      v.addr = s.oracle.mem_addr;
      v.bytes = s.oracle.mem_bytes;
      const Cycle dt = store_data_time(s);
      v.data_ready = dt != kNever && dt <= now;
      v.data = s.oracle.store_value;
    }
    return v;
  }

  // Publishes a (possibly speculative) load data time: arms the wakeup
  // timers for the data return and its verification point, and re-evaluates
  // consumers blocked on the previously undefined time.
  void publish_load_data(unsigned idx) {
    RuuEntry& e = ruu[idx];
    cycle_activity = true;
    if (e.data_cycle != kNever) {
      arm_timer(e.data_cycle);
      if (!e.data_final) arm_timer(e.data_cycle + 1);  // verify next cycle
    }
    wake_waiters(idx);
  }

  void start_load_access(RuuEntry& e, unsigned bits_known) {
    const u32 addr = e.oracle.mem_addr;
    Cache& l1d = mem.l1d();
    const unsigned tag_lo = l1d.geometry().tag_lo_bit();
    e.access_start_cycle = now;

    if (bits_known < 32) {
      // Partial-tag early access (only reachable when the technique is on).
      const unsigned avail_tag = bits_known - tag_lo;
      assert(avail_tag >= 1 && avail_tag < l1d.geometry().tag_bits());
      const u32 ways = l1d.partial_match_ways(addr, avail_tag);
      if (ways == 0) {
        // Early, non-speculative miss: start the L2 path immediately.
        bool hit = false;
        const unsigned lat = mem.data_latency(addr, false, &hit);
        assert(!hit);
        ++stats.l1d_misses;
        ++stats.early_miss_detects;
        e.early_miss = true;
        e.used_partial_tag = true;
        e.data_cycle = now + lat;
        e.data_final = true;
        e.mem_phase = MemPhase::Done;
        return;
      }
      ++stats.partial_tag_accesses;
      e.used_partial_tag = true;
      u32 rng = static_cast<u32>(e.seq);
      const auto way =
          l1d.predict_way(addr, ways, core.way_policy, &rng);
      e.forward_store = -1;
      e.mem_phase = MemPhase::Access;
      e.data_cycle = now + l1d.hit_latency();  // speculative return
      e.data_final = false;
      // Remember the prediction in `predicted_target` is taken; use a
      // dedicated field instead:
      e.predicted_way = way ? static_cast<int>(*way) : -1;
      return;
    }

    // Conventional access with the complete address. Dependents are woken
    // assuming an L1 hit (speculative scheduling); a miss retimes the data
    // and replays them.
    bool hit = false;
    const unsigned lat = mem.data_latency(addr, false, &hit);
    if (hit) {
      ++stats.l1d_hits;
      e.data_cycle = now + lat;
      e.data_final = true;
      e.mem_phase = MemPhase::Done;
    } else {
      ++stats.l1d_misses;
      e.data_cycle = now + l1d.hit_latency();  // optimistic wakeup
      e.true_data_cycle = now + lat;
      e.data_final = false;
      e.mem_phase = MemPhase::Access;
      e.predicted_way = -2;  // marker: plain hit-speculation, not way pred.
    }
  }

  void verify_load(RuuEntry& e) {
    // Called when the full address exists (partial-tag path) or at the
    // optimistic wakeup time (hit-speculation path).
    Cache& l1d = mem.l1d();
    const u32 addr = e.oracle.mem_addr;

    if (e.predicted_way == -2) {
      // Hit-speculation on a known miss: retime and replay consumers.
      ++stats.load_replays;
      if (obs_on) emit_verify(e, 1, e.true_data_cycle, true);
      retime_load(e, e.true_data_cycle);
      return;
    }

    const auto actual = l1d.find(addr);
    bool hit = false;
    const unsigned lat = mem.data_latency(addr, false, &hit);
    if (hit) ++stats.l1d_hits; else ++stats.l1d_misses;

    if (hit && actual && e.predicted_way == static_cast<int>(*actual)) {
      e.data_final = true;  // speculation confirmed, data time stands
      e.mem_phase = MemPhase::Done;
      cycle_activity = true;
      if (obs_on) emit_verify(e, 0, e.data_cycle, false);
      return;
    }
    if (hit) {
      // Way misprediction: one replayed access.
      ++stats.way_mispredicts;
      ++stats.load_replays;
      if (obs_on) emit_verify(e, 2, now + l1d.hit_latency(), true);
      retime_load(e, now + l1d.hit_latency());
    } else {
      ++stats.load_replays;
      if (obs_on) emit_verify(e, 3, now + lat, true);
      retime_load(e, now + lat);
    }
  }

  void retime_load(RuuEntry& e, Cycle new_data_cycle) {
    const unsigned idx = static_cast<unsigned>(&e - ruu.data());
    e.data_cycle = new_data_cycle;
    e.data_final = true;
    e.mem_phase = MemPhase::Done;
    publish_load_data(idx);
    // The data moved later: everything scheduled against the speculative
    // time (and, transitively, its dependents) must be re-examined.
    ++sched_epoch;
    schedule_consumers(idx);
    run_relax();
  }

  void memory_progress() {
    unsigned ports_used = 0;
    // Store views for the walked LSQ prefix, extended incrementally as the
    // walk advances (the scan rebuilt them per load, an O(LSQ^2) cost) and
    // invalidated wholesale when a replay this cycle regresses recorded
    // times — a store's address/data availability may have moved later.
    std::vector<StoreView>& views = views_scratch;
    views.clear();
    std::size_t views_built = 0;
    u64 views_epoch = sched_epoch;
    const auto refresh_views = [&](std::size_t upto) {
      if (views_epoch != sched_epoch) {
        views.clear();
        views_built = 0;
        views_epoch = sched_epoch;
      }
      for (; views_built < upto; ++views_built) {
        const RuuEntry& s = ruu[static_cast<unsigned>(lsq[views_built])];
        if (!s.valid || !s.inst.is_store()) continue;
        views.push_back(store_view_of(views_built));
      }
    };

    for (std::size_t i = 0; i < lsq.size(); ++i) {
      const unsigned idx = static_cast<unsigned>(lsq[i]);
      RuuEntry& e = ruu[idx];
      if (!e.valid) continue;

      if (e.inst.is_store()) {
        if (e.mem_phase == MemPhase::Done) continue;
        if (e.bogus) {
          if (e.ops_done(now)) {
            e.mem_phase = MemPhase::Done;
            cycle_activity = true;
          }
          continue;
        }
        const Cycle addr_t = agen_complete_cycle(e);
        const Cycle data_t = store_data_time(e);
        if (addr_t != kNever && addr_t <= now && data_t != kNever &&
            data_t <= now) {
          e.mem_phase = MemPhase::Done;
          cycle_activity = true;
        }
        continue;
      }

      if (!e.inst.is_load()) continue;
      if (e.bogus) {
        // Wrong-path load: occupies the queue; completes after agen.
        if (e.mem_phase == MemPhase::Agen && e.ops_done(now)) {
          e.data_cycle = now + mem.l1d().hit_latency();
          e.data_final = true;
          e.mem_phase = MemPhase::Done;
          publish_load_data(idx);  // wrong-path consumers still schedule
        }
        continue;
      }

      switch (e.mem_phase) {
        case MemPhase::Agen: {
          const unsigned bits = addr_bits_known_at(e, now);
          if (bits == 0) break;

          // LSQ disambiguation.
          refresh_views(i);
          LoadQuery q{bits, e.oracle.mem_addr, e.oracle.mem_bytes};
          const DisambigResult d = disambiguate_load(
              q, views, core.has(Technique::EarlyLsq),
              core.has(Technique::SpecForward));
          if (d.decision == LoadDecision::WaitStore) break;
          if (e.lsq_decision_cycle == kNever) {
            e.lsq_decision_cycle = now;
            cycle_activity = true;
            if (d.used_partial) {
              e.used_partial_lsq = true;
              ++stats.loads_issued_partial_lsq;
            }
            if (obs_on) {
              obs::TraceEvent ev;
              ev.kind = obs::EventKind::LsqDecision;
              ev.cycle = now;
              ev.seq = e.seq;
              ev.pc = e.pc;
              ev.a = bits;
              ev.b = d.decision == LoadDecision::Forward       ? 1
                     : d.decision == LoadDecision::SpecForward ? 2
                                                               : 0;
              ev.flags = d.used_partial ? obs::kFlagPartial : 0u;
              emit(ev);
            }
          }

          if (d.decision == LoadDecision::Forward) {
            ++stats.load_forwards;
            e.forwarded = true;
            e.forward_store = d.store_id;
            e.forward_store_seq = ruu[d.store_id].seq;
            e.data_cycle = now + 1;
            e.data_final = true;
            e.mem_phase = MemPhase::Done;
            // Replay edge: if the store's address/data times regress, this
            // load's forward must be revalidated.
            consumers[static_cast<unsigned>(d.store_id)].push_back(
                ConsumerRef{idx, e.seq});
            publish_load_data(idx);
            break;
          }
          if (d.decision == LoadDecision::SpecForward) {
            ++stats.spec_forwards;
            e.forwarded = true;
            e.forward_store = d.store_id;
            e.forward_store_seq = ruu[d.store_id].seq;
            e.spec_forward_value = d.forwarded;
            e.data_cycle = now + 1;
            e.data_final = false;
            e.predicted_way = -3;
            e.mem_phase = MemPhase::Access;
            consumers[static_cast<unsigned>(d.store_id)].push_back(
                ConsumerRef{idx, e.seq});
            publish_load_data(idx);
            break;
          }

          // decision == Issue: start the cache access when enough address
          // bits exist.
          const unsigned tag_lo = mem.l1d().geometry().tag_lo_bit();
          const Cycle full_at = full_addr_cycle(e);
          const bool full_now = full_at != kNever && full_at <= now;
          const bool can_partial = core.has(Technique::PartialTag) &&
                                   bits > tag_lo && bits < 32 && !full_now;
          if (full_now || can_partial) {
            if (ports_used >= kDCachePorts) {
              retry_this_cycle = true;  // port conflict: retry next cycle
              break;
            }
            ++ports_used;
            start_load_access(e, full_now ? 32 : bits);
            publish_load_data(idx);
            if (obs_on) {
              obs::TraceEvent ev;
              ev.kind = obs::EventKind::CacheAccess;
              ev.cycle = now;
              ev.seq = e.seq;
              ev.pc = e.pc;
              ev.a = e.data_cycle;
              ev.b = bits;  // the text sink's label reads this, as the
                            // inline trace always did
              ev.flags = (e.used_partial_tag ? obs::kFlagPartial : 0u) |
                         (e.early_miss ? obs::kFlagEarly : 0u);
              emit(ev);
            }
          }
          break;
        }
        case MemPhase::Access: {
          // Verification happens the cycle *after* the speculative data
          // return (paper Figure 3: "verify with full tag bits on next
          // cycle"), so dependents selected against the speculative time are
          // genuinely in flight and must replay on a mis-speculation.
          const Cycle full_at = full_addr_cycle(e);
          const bool full_addr = full_at != kNever && full_at <= now;
          if (now < e.data_cycle + 1) break;
          if (e.predicted_way == -3) {
            // Speculative partial-match forward: the full address settles
            // whether the forwarded value was the architecturally loaded
            // one.
            if (!full_addr) break;
            if (e.spec_forward_value == e.oracle.load_value) {
              e.data_final = true;
              e.mem_phase = MemPhase::Done;
              cycle_activity = true;
              if (obs_on) emit_verify(e, 4, e.data_cycle, false);
            } else {
              ++stats.spec_forward_misses;
              if (obs_on) emit_verify(e, 5, 0, true);
              reset_load(e);
              // Data regressed to undefined: replay the dependence cone.
              ++sched_epoch;
              cycle_activity = true;
              schedule_consumers(idx);
              run_relax();
            }
            break;
          }
          if (e.predicted_way == -2 || full_addr) verify_load(e);
          break;
        }
        case MemPhase::Done:
          break;
      }
    }
  }

  // ---------------------------------------------------------------------------
  // selective replay: relaxation to a legal schedule
  // ---------------------------------------------------------------------------

  void schedule_relax(unsigned idx) {
    if (relax_queued[idx]) return;
    relax_queued[idx] = 1;
    relax_work.push_back(idx);
  }

  // Queue every live dependent of `idx` for replay revalidation, pruning
  // edges to recycled entries along the way.
  void schedule_consumers(unsigned idx) {
    std::vector<ConsumerRef>& list = consumers[idx];
    std::size_t w = 0;
    for (const ConsumerRef& c : list) {
      const RuuEntry& d = ruu[c.idx];
      if (!d.valid || d.seq != c.seq) continue;  // dead edge: drop
      list[w++] = c;
      schedule_relax(c.idx);
    }
    list.resize(w);
  }

  // Selective replay: relaxation to a legal schedule. The scan-based
  // scheduler re-validated the entire window to a global fixpoint after any
  // retiming; this walks only the transitive dependents of the changed
  // entries (the consumer edges registered at rename plus the dynamic
  // store->forwarded-load edges), which reaches the same fixpoint — an op's
  // legality depends only on its sources' recorded times, its own chain
  // predecessors and dispatch-time constants.
  void run_relax() {
    // Sub-phase timing: relaxation runs inside memory_progress, so this
    // time is *also* counted in hprof.memory (see obs/host_profile.hpp).
    HpClock::time_point t0;
    if (host_profile_on) t0 = HpClock::now();
    while (!relax_work.empty()) {
      const unsigned idx = relax_work.back();
      relax_work.pop_back();
      relax_queued[idx] = 0;
      RuuEntry& e = ruu[idx];
      if (!e.valid) continue;
      bool changed = false;

      // Revert this entry's slice-ops whose select is no longer legal, to a
      // local fixpoint (reverting one op can invalidate its chain
      // successor). Operand availability is checked against *current*
      // times: values never become available earlier than currently
      // recorded, so a select that still postdates every requirement
      // remains legal.
      bool again = true;
      while (again) {
        again = false;
        for (unsigned i = 0; i < e.num_ops; ++i) {
          SliceOp& op = e.ops[i];
          if (!op.selected()) continue;
          const Cycle ready = op_ready_time(e, i);
          if (ready == kNever || ready > op.select_cycle) {
            op.reset();
            ++stats.op_replays;
            queue_op(idx, i);  // back into the scheduler queues
            changed = true;
            again = true;
            if (obs_on) {
              obs::TraceEvent ev;
              ev.kind = obs::EventKind::OpReplay;
              ev.cycle = now;
              ev.seq = e.seq;
              ev.pc = e.pc;
              ev.op_idx = i;
              ev.flags = e.num_ops > 1 ? obs::kFlagMultiOp : 0u;
              emit(ev);
            }
          }
        }
      }
      if (e.inst.is_load() && !e.bogus) {
        changed |= revalidate_load(e);
      }
      if (e.inst.is_store() && e.mem_phase == MemPhase::Done && !e.bogus) {
        const Cycle addr_t = agen_complete_cycle(e);
        const Cycle data_t = store_data_time(e);
        if (addr_t == kNever || addr_t > now || data_t == kNever ||
            data_t > now) {
          e.mem_phase = MemPhase::Agen;
          changed = true;
        }
      }
      if (e.inst.is_cond_branch() && e.resolved && !e.recovery_done) {
        // Resolution may have been based on a reverted compare op; let the
        // resolve scan recompute it. (A branch whose recovery already
        // redirected fetch keeps it: the direction was architecturally
        // correct, only its timing was optimistic.)
        if (resolve_time(e) > e.resolve_cycle) {
          e.resolved = false;
          e.resolve_cycle = kNever;
          changed = true;
        }
      }

      if (changed) {
        ++sched_epoch;
        cycle_activity = true;
      }
      // A store relays regressions onward even when nothing about the store
      // itself changed: a forwarded load compares against the store's
      // *source* times, which this entry-local check does not observe.
      if (changed || (e.inst.is_store() && !e.bogus))
        schedule_consumers(idx);
    }
    if (host_profile_on) hp_take(t0, hprof.replay);
  }

  bool revalidate_load(RuuEntry& e) {
    bool changed = false;
    // Forwarded data must still be legal: the decision cycle (data_cycle - 1)
    // must postdate the store's address, the store's data and — for a
    // confirmed (non-speculative) forward — the load's own full address.
    // A committed forwarding store is always legal.
    const bool spec_forward =
        e.forwarded && e.mem_phase == MemPhase::Access &&
        e.predicted_way == -3;
    if (e.forwarded && (e.mem_phase == MemPhase::Done || spec_forward)) {
      const Cycle decision = e.data_cycle - 1;
      bool legal = spec_forward ||
                   addr_bits_known_at(e, decision) == 32;
      const RuuEntry& s = ruu[e.forward_store];
      if (legal && s.valid && s.seq == e.forward_store_seq) {
        const Cycle dt = store_data_time(s);
        const Cycle at = agen_complete_cycle(s);
        legal = dt != kNever && dt <= decision && at != kNever &&
                at <= decision;
      }
      if (!legal) {
        reset_load(e);
        changed = true;
      }
    }
    // An access that started before its address bits were really there.
    if (e.access_start_cycle != kNever) {
      bool legal;
      if (e.used_partial_tag || e.early_miss) {
        const unsigned tag_lo = mem.l1d().geometry().tag_lo_bit();
        legal = addr_bits_known_at(e, e.access_start_cycle) > tag_lo;
      } else {
        const Cycle full_at = full_addr_cycle(e);
        legal = full_at != kNever && full_at <= e.access_start_cycle;
      }
      if (!legal) {
        reset_load(e);
        changed = true;
      }
    }
    return changed;
  }

  void reset_load(RuuEntry& e) {
    e.mem_phase = MemPhase::Agen;
    e.lsq_decision_cycle = kNever;
    e.access_start_cycle = kNever;
    e.data_cycle = kNever;
    e.true_data_cycle = kNever;
    e.data_final = false;
    e.forwarded = false;
    e.forward_store = -1;
    e.predicted_way = -1;
    ++stats.load_replays;
  }

  // ---------------------------------------------------------------------------
  // branch resolution & recovery
  // ---------------------------------------------------------------------------

  // Earliest cycle at which the branch outcome is provable from the compare
  // slice-ops that have executed; kNever if not yet provable.
  Cycle resolve_time(const RuuEntry& e) const {
    const ExecClass cls = e.inst.cls();
    if (cls == ExecClass::JumpReg) return e.last_op_done();
    if (cls == ExecClass::BranchSign || e.num_ops == 1 ||
        !core.has(Technique::EarlyBranch))
      return e.last_op_done();

    // BranchEq with early resolution: a differing slice proves "not equal"
    // the moment its comparison completes; equality needs all slices.
    const u32 a = e.oracle.src1_value, b = e.oracle.src2_value;
    if (a == b) return e.last_op_done();
    Cycle best = kNever;
    for (unsigned s = 0; s < e.num_ops; ++s) {
      if (slice_get(geom, a, s) == slice_get(geom, b, s)) continue;
      if (e.ops[s].done_cycle != kNever)
        best = std::min(best, e.ops[s].done_cycle);
    }
    return best;
  }

  void squash_younger_than(u64 seq) {
    while (ruu_count > 0 && youngest().seq > seq) {
      RuuEntry& victim = youngest();
      if (obs_on) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::Squash;
        ev.cycle = now;
        ev.seq = victim.seq;
        ev.pc = victim.pc;
        ev.flags = victim.bogus ? obs::kFlagBogus : 0u;
        emit(ev);
      }
      if (victim.inst.is_mem()) {
        assert(!lsq.empty() &&
               lsq.back() == static_cast<int>(ruu_index(ruu_count - 1)));
        lsq.pop_back();
      }
      // Unwind the rename map from the undo log, youngest-first and in
      // reverse of dispatch's write order. This replaces the scan-based
      // O(RUU) rebuild; a restored reference to a since-committed producer
      // fails its seq check everywhere and thus reads as from-regfile,
      // exactly as the rebuild (which never sees committed producers)
      // produced.
      if (victim.inst.writes_hi_lo()) {
        rename[kLoReg] = victim.prev_lo;
        rename[kHiReg] = victim.prev_hi;
      }
      const unsigned dest = victim.inst.dest_ext();
      if (dest != 0) rename[dest] = victim.prev_dest;
      victim.valid = false;  // queued scheduler refs die via this
      --ruu_count;
    }
  }

  void resolve_and_recover() {
    // Walk the watch list (correct-path branches in dispatch order) instead
    // of the whole RUU, compacting out refs to squashed/committed entries.
    // After a recovery the scan stopped examining younger branches (they
    // were just squashed); `recovered` replicates that early exit while the
    // compaction still copies the remaining refs.
    std::size_t w = 0;
    bool recovered = false;
    for (const ConsumerRef& c : branch_watch) {
      RuuEntry& e = ruu[c.idx];
      if (!e.valid || e.seq != c.seq) continue;  // squashed or committed
      branch_watch[w++] = c;
      if (recovered || e.resolved) continue;

      const Cycle rt = resolve_time(e);
      if (rt == kNever || rt > now) continue;
      e.resolved = true;
      e.resolve_cycle = rt;
      cycle_activity = true;
      if (!e.ops_done(rt)) ++stats.early_resolved_branches;
      if (obs_on) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::BranchResolve;
        ev.cycle = now;
        ev.seq = e.seq;
        ev.pc = e.pc;
        ev.a = rt;
        ev.flags = (e.ops_done(rt) ? 0u : obs::kFlagEarly) |
                   (e.mispredicted ? obs::kFlagMispredicted : 0u);
        emit(ev);
      }

      predictor.resolve(e.pc, e.inst, e.oracle.branch_taken,
                        e.oracle.next_pc, e.history_checkpoint);

      if (e.mispredicted && !e.recovery_done) {
        e.recovery_done = true;
        if (e.inst.is_cond_branch())
          predictor.repair_history(e.history_checkpoint,
                                   e.oracle.branch_taken);
        else
          predictor.repair_history_exact(e.history_checkpoint);
        squash_younger_than(e.seq);
        fetch_q.clear();
        fetch_pc = e.oracle.next_pc;
        fetch_stall_until = now + 1;
        wrong_path = false;
        recovered = true;  // younger refs are now dead; stop processing
      }
    }
    branch_watch.resize(w);
  }

  // ---------------------------------------------------------------------------
  // commit
  // ---------------------------------------------------------------------------

  bool committable(const RuuEntry& e) const {
    if (e.bogus) return false;
    if (!e.ops_done(now)) return false;
    if (e.inst.is_load())
      return e.data_final && e.data_cycle <= now;
    if (e.inst.is_store()) return e.mem_phase == MemPhase::Done;
    if (e.inst.is_cond_branch() || e.inst.cls() == ExecClass::JumpReg)
      return e.resolved && e.resolve_cycle <= now;
    return true;
  }

  void commit() {
    unsigned n = 0;
    while (n < core.commit_width && ruu_count > 0 &&
           stats.committed < max_commits_) {
      RuuEntry& e = entry_at(0);
      if (e.bogus) {
        fail("bogus entry reached commit");
        return;
      }
      if (!committable(e)) break;

      // Co-simulation: the independent checker must agree on every effect.
      // Sub-phase timing: this is part of hprof.commit as well.
      ExecRecord ref;
      HpClock::time_point t0;
      if (host_profile_on) t0 = HpClock::now();
      const StepResult sr = checker.step(&ref);
      if (sr.kind == StepResult::Kind::Fault) {
        fail("checker fault: " + sr.fault);
        return;
      }
      if (ref.pc != e.oracle.pc || ref.next_pc != e.oracle.next_pc ||
          ref.dest != e.oracle.dest || ref.dest_value != e.oracle.dest_value ||
          ref.mem_addr != e.oracle.mem_addr ||
          ref.store_value != e.oracle.store_value) {
        std::ostringstream os;
        os << "co-simulation divergence at pc 0x" << std::hex << e.oracle.pc;
        fail(os.str());
        return;
      }
      if (host_profile_on) hp_take(t0, hprof.cosim);

      // Stores drain to the cache at commit (write buffer hides latency).
      if (e.inst.is_store()) {
        bool hit = false;
        mem.data_latency(e.oracle.mem_addr, true, &hit);
        if (hit) ++stats.l1d_hits; else ++stats.l1d_misses;
        ++stats.stores;
      }
      if (e.inst.is_load()) {
        ++stats.loads;
        if (detail && e.data_cycle >= e.dispatch_cycle)
          detail->load_to_use.add(e.data_cycle - e.dispatch_cycle);
      }
      if (e.inst.is_cond_branch()) {
        ++stats.branches;
        if (e.mispredicted) ++stats.branch_mispredicts;
        if (detail && e.resolve_cycle >= e.dispatch_cycle)
          detail->branch_resolve_delay.add(e.resolve_cycle - e.dispatch_cycle);
      }

      // Free the rename mapping if still pointing here.
      const unsigned idx = ruu_index(0);
      const unsigned dest = e.inst.dest_ext();
      if (dest != 0 && rename[dest].index == static_cast<int>(idx) &&
          rename[dest].seq == e.seq)
        rename[dest] = ProducerRef{};
      for (const unsigned hr : {kHiReg, kLoReg})
        if (rename[hr].index == static_cast<int>(idx) &&
            rename[hr].seq == e.seq)
          rename[hr] = ProducerRef{};

      if (e.inst.is_mem()) {
        assert(!lsq.empty() && lsq.front() == static_cast<int>(idx));
        lsq.pop_front();
      }

      if (obs_on) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::Commit;
        ev.cycle = now;
        ev.seq = e.seq;
        ev.pc = e.pc;
        ev.a = e.dispatch_cycle;
        emit(ev);
      }
      e.valid = false;
      // Ops blocked on this producer see its sources as from-regfile now;
      // normally its times were all defined (and woke them) long ago, but
      // requeueing is idempotent so wake defensively.
      wake_waiters(idx);
      ruu_head = (ruu_head + 1) % core.ruu_entries;
      --ruu_count;
      ++stats.committed;
      ++n;
      last_commit_cycle = now;
      cycle_activity = true;

      if (checker.exited()) {
        exited = true;
        exit_code = checker.exit_code();
        return;
      }
    }
  }

  // ---------------------------------------------------------------------------
  // main loop
  // ---------------------------------------------------------------------------

  u64 max_commits_ = 0;
  Cycle measure_base_cycle = 0;

  // Earliest future cycle at which anything can happen: a scheduled wakeup,
  // an armed timer (op completions, load data returns, verify points), the
  // front slot becoming dispatchable, a fetch stall expiring — or, failing
  // all of those, the exact cycle the watchdog would trip.
  Cycle next_event_cycle() {
    Cycle next = last_commit_cycle + kWatchdogCycles + 1;
    if (wheel_count) next = std::min(next, wheel_next());
    if (!wake_far.empty()) next = std::min(next, wake_far.begin()->first);
    if (timer_count) next = std::min(next, timer_next());
    while (!timer_far.empty() && *timer_far.begin() <= now)
      timer_far.erase(timer_far.begin());
    if (!timer_far.empty()) next = std::min(next, *timer_far.begin());
    next = std::min(next, dispatch_blocked_until);
    if (!halted && now < fetch_stall_until)
      next = std::min(next, fetch_stall_until);
    return std::max(next, now + 1);
  }

  SimResult run(u64 max_commits, u64 warmup_commits) {
    const WallTimer timer;
    max_commits_ = warmup_commits + max_commits;
    bool warm = warmup_commits == 0;
    SimResult result;
    obs_on = !sinks.empty();
    if (obs_on) {
      obs::TraceMeta meta;
      meta.slices = core.slices;
      meta.config = cfg.describe();
      for (obs::TraceSink* s : sinks) s->begin(meta);
    }
    if (sampler) sampler->begin(cfg.describe());
    // Host-phase profiling: one fence-post clock read per phase per cycle
    // when enabled (hp_take both accumulates and re-stamps); six dead
    // predictable branches per cycle when not.
    const bool hp = host_profile_on;
    HpClock::time_point hp_t;
    while (error.empty() && !exited && stats.committed < max_commits_) {
      if (!warm && stats.committed >= warmup_commits) {
        // Discard warm-up statistics; microarchitectural state stays hot.
        warm = true;
        max_commits_ = max_commits;
        measure_base_cycle = now;
        const u64 extra = stats.committed - warmup_commits;
        stats = SimStats{};
        stats.committed = extra;
        if (sampler) sampler->rebase(stats);  // cycles already 0-based here
      }
      if (detail) {
        detail->ruu_occupancy.add(ruu_count);
        detail->lsq_occupancy.add(lsq.size());
      }
      cycle_activity = false;
      retry_this_cycle = false;
      {
        // This cycle's timers are now due: retire their bitmap bit so the
        // wheel never holds a bit at or behind `now` (see arm_timer).
        const unsigned slot = static_cast<unsigned>(now & (kWheelSize - 1));
        const u64 bit = u64{1} << (slot & 63);
        timer_count -= (timer_bits[slot >> 6] & bit) ? 1 : 0;
        timer_bits[slot >> 6] &= ~bit;
      }
      const u64 committed_before = stats.committed;
      if (hp) hp_t = HpClock::now();
      commit();
      if (hp) hp_take(hp_t, hprof.commit);
      if (detail) detail->commit_width.add(stats.committed - committed_before);
      if (warm && sampler && sampler->due(stats.committed)) {
        // stats.cycles is only assigned after the run; rows need the
        // current measured-relative cycle, so sample an adjusted copy.
        SimStats snap = stats;
        snap.cycles = now - measure_base_cycle;
        sampler->sample(snap);
      }
      if (!error.empty() || exited) break;
      resolve_and_recover();
      if (hp) hp_take(hp_t, hprof.resolve);
      select_and_execute();
      if (hp) hp_take(hp_t, hprof.select);
      // After select so sum-addressed accesses can overlap the agen op that
      // was picked this very cycle; the done-based (conventional/partial)
      // paths see identical timing either way.
      memory_progress();
      if (hp) hp_take(hp_t, hprof.memory);
      dispatch();
      if (hp) hp_take(hp_t, hprof.dispatch);
      fetch();
      if (hp) {
        hp_take(hp_t, hprof.fetch);
        ++hprof.loop_cycles;
      }
      // Idle skip: a cycle in which nothing changed, nothing is awaiting
      // selection and no port-blocked load retries cannot enable anything
      // next cycle either — jump straight to the next scheduled event. The
      // skipped cycles are indistinguishable from singly-stepped idle ones,
      // so stats stay bit-identical; the occupancy histograms are backfilled
      // with the (frozen) per-cycle samples the stepped loop would have
      // taken.
      Cycle next = now + 1;
      if (!cycle_activity && !retry_this_cycle && pending.empty())
        next = next_event_cycle();
      if (next > now + 1) {
        const u64 skipped = next - now - 1;
        stats.idle_cycles_skipped += skipped;
        if (obs_on) {
          obs::TraceEvent ev;
          ev.kind = obs::EventKind::IdleSkip;
          ev.cycle = now + 1;  // the skipped span starts next cycle
          ev.a = skipped;
          emit(ev);
        }
        if (detail) {
          detail->ruu_occupancy.add(ruu_count, skipped);
          detail->lsq_occupancy.add(lsq.size(), skipped);
          detail->commit_width.add(0, skipped);
          detail->idle_skip_length.add(skipped);
        }
      }
      now = next;
      if (now - last_commit_cycle > kWatchdogCycles) {
        fail("watchdog: no instruction committed for " +
             std::to_string(kWatchdogCycles) + " cycles");
      }
    }
    stats.cycles = now - measure_base_cycle;
    stats.host_seconds = timer.seconds();
    if (sampler && warm) sampler->finish(stats);
    if (host_profile_on) {
      hprof.enabled = true;
      stats.host_profile = hprof;
    }
    if (obs_on)
      for (obs::TraceSink* s : sinks) s->end();
    result.stats = stats;
    result.exited = exited;
    result.exit_code = exit_code;
    result.error = error;
    return result;
  }
};

Simulator::Simulator(const MachineConfig& config, const Program& program)
    : cfg_(config), impl_(std::make_unique<Impl>(config, program)) {}

Simulator::Simulator(const MachineConfig& config, const Program& program,
                     const Checkpoint& start)
    : Simulator(config, program) {
  restore_checkpoint(impl_->oracle, start);
  restore_checkpoint(impl_->checker, start);
  impl_->fetch_pc = start.pc;
}

Simulator::Simulator(Simulator&&) noexcept = default;
Simulator& Simulator::operator=(Simulator&&) noexcept = default;
Simulator::~Simulator() = default;

SimResult Simulator::run(u64 max_commits, u64 warmup_commits) {
  return impl_->run(max_commits, warmup_commits);
}

void Simulator::set_pipe_trace(std::ostream& os, Cycle start, Cycle end) {
  if (impl_->owned_pipe_sink) {  // re-target: drop the previous sink
    auto& v = impl_->sinks;
    v.erase(std::remove(v.begin(), v.end(), impl_->owned_pipe_sink.get()),
            v.end());
  }
  impl_->owned_pipe_sink =
      std::make_unique<obs::PipeTextSink>(os, start, end);
  impl_->sinks.push_back(impl_->owned_pipe_sink.get());
}

void Simulator::add_trace_sink(obs::TraceSink* sink) {
  if (sink) impl_->sinks.push_back(sink);
}

void Simulator::set_interval_sampler(obs::IntervalSampler* sampler) {
  impl_->sampler = sampler;
}

void Simulator::enable_host_profile() { impl_->host_profile_on = true; }

void Simulator::enable_detail() {
  if (!impl_->detail) impl_->detail = std::make_unique<DetailedStats>();
}

const DetailedStats& Simulator::detail() const {
  assert(impl_->detail && "enable_detail() before run()");
  return *impl_->detail;
}

SimResult simulate(const MachineConfig& config, const Program& program,
                   u64 max_commits, u64 warmup_commits) {
  return Simulator(config, program).run(max_commits, warmup_commits);
}

SimResult simulate(const MachineConfig& config, const Program& program,
                   const Checkpoint& start, u64 max_commits,
                   u64 warmup_commits) {
  return Simulator(config, program, start).run(max_commits, warmup_commits);
}

}  // namespace bsp
