// Slice-level dependence rules of the bit-sliced datapath (paper Figure 8).
//
// Each RUU entry's result is produced slice by slice; SliceTimes records the
// cycle each slice became available. The rules below say, for every ExecClass,
// in which order an instruction's slice-ops execute and which *source* slices
// a given slice-op consumes. They are pure functions so the scheduler, the
// tests and the documentation all share one definition.
#pragma once

#include <array>
#include <limits>

#include "config/machine_config.hpp"
#include "isa/isa.hpp"
#include "util/bitops.hpp"

namespace bsp {

using Cycle = u64;
inline constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

// Per-slice completion times of a value (or of an instruction's slice-ops).
struct SliceTimes {
  std::array<Cycle, kMaxSlices> done;

  SliceTimes() { done.fill(kNever); }

  // All slices complete at a single cycle (atomic result).
  static SliceTimes all_at(Cycle c, unsigned count) {
    SliceTimes t;
    for (unsigned s = 0; s < count; ++s) t.done[s] = c;
    return t;
  }
  static SliceTimes ready(unsigned count) { return all_at(0, count); }

  Cycle last(unsigned count) const {
    Cycle m = 0;
    for (unsigned s = 0; s < count; ++s) m = std::max(m, done[s]);
    return m;
  }
  bool complete(unsigned count) const { return last(count) != kNever; }

  // Number of contiguous completed low slices by cycle `now` (how many low
  // bits of an address are known).
  unsigned contiguous_low_done(unsigned count, Cycle now) const {
    unsigned n = 0;
    while (n < count && done[n] != kNever && done[n] <= now) ++n;
    return n;
  }
};

// How an instruction's slice-ops are ordered.
enum class SliceOrder : u8 {
  LowToHigh,  // carry-style serial chain (add, left shift, compare)
  HighToLow,  // right shifts: bits move downward
  Any,        // logic-style: slices independent (needs OooSlices, else
              // the issue logic serialises them low-to-high)
  Collect,    // full-collect unit (mul/div): one op needing all source slices
};

// Ordering for `cls` under the given technique set. When PartialBypass is
// off, everything behaves as Collect (atomic operands, paper Figure 8a).
SliceOrder slice_order(ExecClass cls, const CoreConfig& cfg);

// Position of slice-op `op_idx` in the order the select logic examines an
// instruction's ops: HighToLow instructions are walked from the top slice
// down, everything else from the bottom up. The event-driven scheduler sorts
// same-age candidates by this position so its within-entry issue priority is
// identical to a full visit-order walk.
inline unsigned slice_visit_pos(SliceOrder order, unsigned num_ops,
                                unsigned op_idx) {
  return order == SliceOrder::HighToLow ? num_ops - 1 - op_idx : op_idx;
}

// Source slices consumed by result-slice `s` of class `cls`, as a bitmask
// over source slices. The scheduler applies it to both register sources.
// For Collect, every slice-op needs all source slices.
u32 needed_source_slices(ExecClass cls, unsigned s, const SliceGeometry& g);

// Does slice-op `s` additionally require the *previous* slice-op of the same
// instruction (carry / shifted-in bits), i.e. an inter-slice dependence?
// "Previous" means s-1 for LowToHigh, s+1 for HighToLow.
bool has_inter_slice_dep(ExecClass cls);

// Variable shifts consume the shift amount from the low slice of rs.
bool reads_amount_slice0(Op op);

}  // namespace bsp
