// In-flight instruction state for the bit-sliced out-of-order core.
//
// The core uses a unified RUU (register update unit: ROB + issue window, as
// in SimpleScalar's sim-outorder) plus a unified load/store queue. Each RUU
// entry carries per-slice-op scheduling state; values are supplied by the
// dispatch-time oracle emulator, timing is decided here.
#pragma once

#include <array>
#include <deque>
#include <vector>

#include "core/sliced_value.hpp"
#include "emu/emulator.hpp"
#include "obs/host_profile.hpp"
#include "stats/stats.hpp"

namespace bsp {

// Rename-map ids are the ISA's extended-register ids: GPRs, HI, LO, the FP
// registers, and the FP condition flag (see isa.hpp kExt*).
inline constexpr unsigned kHiReg = kExtHi;
inline constexpr unsigned kLoReg = kExtLo;
inline constexpr unsigned kNumRenameRegs = kNumExtRegs;

// Reference to a producing RUU entry; an entry index is only trusted while
// the sequence numbers still agree (entries are recycled after commit).
struct ProducerRef {
  int index = -1;  // -1: value comes from the architectural register file
  u64 seq = 0;

  bool from_regfile() const { return index < 0; }
};

// One schedulable micro-operation: a bit-slice of an instruction's execution
// (or the whole instruction for full-collect classes / unsliced machines).
// The simulator keeps these as struct-of-arrays slabs indexed by RUU slot
// (select and done cycles in separate dense arrays) rather than embedded in
// RuuEntry; this struct remains the conceptual unit and is still used by
// standalone scheduling helpers/tests.
struct SliceOp {
  Cycle select_cycle = kNever;  // cycle the scheduler picked it
  Cycle done_cycle = kNever;    // cycle its result slice(s) broadcast

  bool selected() const { return select_cycle != kNever; }
  bool done_by(Cycle now) const { return done_cycle <= now; }
  void reset() { select_cycle = done_cycle = kNever; }
};

// Result-time class of an entry, fixed at dispatch: which completion time(s)
// a consumer of slice `k` of the result must wait for. Collapses the
// per-wakeup branching over (is-load, exec class, op count, narrow-width)
// into one dense switch on the hottest path in the simulator.
enum : u8 {
  kResSliced = 0,  // slice k available at ops[k].done
  kResLoad,        // all slices at data_cycle (loads)
  kResLast,        // all slices at the last op's done (compares)
  kResSingle,      // one op: everything at ops[0].done
  kResNarrow,      // narrow-width release: every slice at ops[0].done
};

// Dispatch-invariant schedule shape of one static instruction (one text
// word), predecoded once at Simulator construction under the machine's
// slice geometry and technique set. Dispatch copies a few bytes out of this
// row instead of re-deriving class, order, latency, rename ids and
// source-need masks per dynamic instance — those per-dispatch lookups
// (slice_order / needed_source_slices / reads_amount_slice0 and friends)
// dominated dispatch-phase profiles.
struct StaticInst {
  // Flat predicate bits; the per-cycle state machines branch on these
  // instead of re-deriving ExecClass properties through the op-info table.
  enum : u16 {
    kFlagLoad = 1u << 0,
    kFlagStore = 1u << 1,
    kFlagMem = 1u << 2,
    kFlagControl = 1u << 3,
    kFlagCondBranch = 1u << 4,   // includes FP branches
    kFlagJumpReg = 1u << 5,
    kFlagWritesHiLo = 1u << 6,
    kFlagIntMulDiv = 1u << 7,    // single unpipelined integer mul/div unit
    kFlagFpMulDiv = 1u << 8,     // single unpipelined FP mul/div/sqrt unit
    kFlagFpAlu = 1u << 9,        // FP ALU pool (incl. FP compare/branch)
    kFlagNarrowCand = 1u << 10,  // NarrowWidth on, non-FP register dest:
                                 // dispatch runs the dynamic narrow test
    kFlagEarlyEq = 1u << 11,     // multi-op BranchEq under EarlyBranch:
                                 // resolve_time walks the compare slices
    kFlagWatched = 1u << 12,     // cond branch or jr: joins branch_watch
  };

  DecodedInst inst;
  u16 flags = 0;
  u8 kind = 0;            // ExecClass, dense for flat switches
  u8 num_ops = 1;         // slice-ops (geometry count) or 1 (collect)
  u16 op_latency = 1;     // cycles from select to done, per op
  SliceOrder order = SliceOrder::Collect;
  u8 res_kind = kResSliced;  // static part; narrow upgraded at dispatch
  u8 src1_ext = 0, src2_ext = 0, dest_ext = 0;  // rename-map ids
  u8 hilo_src = 0;        // HI/LO source rename id (mfhi/mflo), 0: none
  // Source-slice need masks, [op_idx][which] (0=src1, 1=src2, 2=HI/LO);
  // a pure function of (opcode, slice order, geometry, techniques).
  std::array<std::array<u32, 3>, kMaxSlices> need{};
};

// Progress of a load/store through the memory system.
enum class MemPhase : u8 {
  Agen,      // effective address still being generated / LSQ undecided
  Access,    // (loads) cache access in flight, data time is speculative
  Done,      // data final (loads) / address+data complete (stores)
};

struct RuuEntry {
  // --- hot scheduler header --------------------------------------------------
  // Everything the wakeup/select/replay loops read when this entry is
  // consulted as a producer lives up front, so a producer probe touches the
  // entry's first cache line only (the per-op select/done cycles are
  // struct-of-arrays slabs in the simulator, indexed by RUU slot).
  bool valid = false;
  bool bogus = false;      // wrong-path: occupies resources, no effects
  u8 res_kind = kResSliced;  // result-time class (kRes*), fixed at dispatch
  u8 num_ops = 1;            // slice-ops (geometry count) or 1 (collect)
  SliceOrder order = SliceOrder::Collect;
  u16 flags = 0;             // StaticInst flag bits, copied at dispatch
  u16 op_latency = 1;        // cycles from select to done, per op
  u64 seq = 0;
  Cycle data_cycle = kNever;  // load data availability (speculative
                              // until verified)
  Cycle ready_floor = 0;      // dispatch_cycle + issue_to_exec_stages
  // Register sources resolved at dispatch: [0]=src1, [1]=src2, [2]=HI/LO.
  std::array<ProducerRef, 3> sources;
  const StaticInst* si = nullptr;  // predecoded row (source-need masks,
                                   // rename ids)

  // --- cold state ------------------------------------------------------------
  u32 pc = 0;
  DecodedInst inst;
  ExecRecord oracle;       // architectural effects (valid when !bogus)
  Cycle dispatch_cycle = 0;

  // --- memory state (loads & stores) ---
  MemPhase mem_phase = MemPhase::Agen;
  Cycle lsq_decision_cycle = kNever;  // when the LSQ let the load proceed
  Cycle access_start_cycle = kNever;  // cache probe start (loads)
  bool data_final = false;            // verification complete
  bool forwarded = false;             // data came from an older store
  int forward_store = -1;             // RUU index of that store
  u64 forward_store_seq = 0;
  bool used_partial_lsq = false;      // issued before full address compare
  bool used_partial_tag = false;      // accessed cache with partial tag
  bool early_miss = false;            // partial tag proved a miss early
  int predicted_way = -1;             // way-predictor choice; -2 marks a
                                      // plain hit-speculated miss, -3 a
                                      // speculative partial-match forward
  Cycle true_data_cycle = kNever;     // actual data time on a known miss
  u32 spec_forward_value = 0;         // value forwarded speculatively
  bool narrow_result = false;         // result is a sign-extension of its
                                      // low slice (NarrowWidth extension)

  // --- control state (branches/jumps) ---
  bool predicted_taken = false;
  u32 predicted_target = 0;
  u32 history_checkpoint = 0;  // gshare history at prediction time
  bool mispredicted = false;     // prediction disagrees with the oracle
  bool resolved = false;
  Cycle resolve_cycle = kNever;
  bool recovery_done = false;    // flush+redirect already performed
  bool caused_exit = false;      // oracle executed SYS_EXIT at this entry's
                                 // dispatch (drives commit-time exit when
                                 // the co-sim checker is off)

  // --- rename undo log ---
  // The map entries this instruction displaced at dispatch. Recovery walks
  // the squashed tail youngest-first restoring these, which rebuilds the
  // rename map in O(squashed) instead of O(RUU). A restored reference may
  // point at a producer that has since committed; such a stale reference
  // fails its sequence check everywhere it is consulted and therefore
  // behaves exactly like a from-regfile (always-ready) source.
  ProducerRef prev_dest;
  ProducerRef prev_hi;
  ProducerRef prev_lo;

  bool is_load() const { return !bogus ? oracle.is_load : inst.is_load(); }
  bool is_store() const { return !bogus ? oracle.is_store : inst.is_store(); }

  // Dispatch-time reset: clears exactly the fields a recycled slot could
  // otherwise leak into the new incarnation. Everything not listed is
  // either written unconditionally by dispatch before any read (valid,
  // bogus, seq, pc, si, inst, flags/num_ops/op_latency/order/res_kind,
  // ready_floor, dispatch_cycle, sources[0..1], prediction state from the
  // fetch slot) or only ever read behind a guard that dispatch re-arms
  // (prev_* behind dest/hi-lo renames, forward_store_seq and
  // spec_forward_value behind `forwarded`/way markers, narrow_result
  // behind the narrow-candidate branch). Clearing the whole entry instead
  // is correct but rewrites ~3 cache lines of cold state per dispatch.
  void reset_for_dispatch() {
    data_cycle = kNever;
    sources[2] = ProducerRef{};
    mem_phase = MemPhase::Agen;
    lsq_decision_cycle = kNever;
    access_start_cycle = kNever;
    data_final = false;
    forwarded = false;
    forward_store = -1;
    used_partial_lsq = false;
    used_partial_tag = false;
    early_miss = false;
    predicted_way = -1;
    true_data_cycle = kNever;
    mispredicted = false;
    resolved = false;
    resolve_cycle = kNever;
    recovery_done = false;
    caused_exit = false;
  }
};

// A pre-decoded instruction travelling down the front end: a pointer into
// the static-instruction table plus per-fetch prediction state (the front
// end no longer copies a DecodedInst per slot per cycle).
struct FetchSlot {
  u32 pc = 0;
  const StaticInst* si = nullptr;
  Cycle dispatch_ready = 0;  // earliest cycle it can enter the RUU
  bool predicted_taken = false;
  u32 predicted_target = 0;
  u32 history_checkpoint = 0;
};

// Aggregate counters reported after a timing run.
struct SimStats {
  u64 cycles = 0;
  u64 committed = 0;
  u64 dispatched = 0;
  u64 bogus_dispatched = 0;

  u64 branches = 0;             // committed conditional branches
  u64 branch_mispredicts = 0;
  u64 early_resolved_branches = 0;  // mispredicts signalled before last slice

  u64 loads = 0;
  u64 stores = 0;
  u64 load_forwards = 0;
  u64 loads_issued_partial_lsq = 0;
  u64 partial_tag_accesses = 0;
  u64 way_mispredicts = 0;      // partial-tag way prediction replays
  u64 early_miss_detects = 0;
  u64 load_replays = 0;         // any load-latency mis-speculation replay
  u64 op_replays = 0;           // slice-ops squashed by selective replay
  u64 spec_forwards = 0;        // speculative partial-match forwards tried
  u64 spec_forward_misses = 0;  // ... that verification refuted
  u64 narrow_operands = 0;      // results eligible for narrow-width release

  u64 l1d_hits = 0;
  u64 l1d_misses = 0;

  // --- simulator-throughput accounting -------------------------------------
  // `idle_cycles_skipped` counts simulated cycles the event-driven scheduler
  // fast-forwarded because nothing could happen (see ARCHITECTURE.md §"Event-
  // driven scheduling"); it is deterministic for a given config + program.
  // `host_seconds` is the wall-clock time Simulator::run spent in its cycle
  // loop. It is host-side only: equivalence comparisons must ignore it, and
  // the campaign store records it next to duration_ms rather than with the
  // architectural counters.
  u64 idle_cycles_skipped = 0;

  // --- CPI-stack cycle accounting (obs/cpi_stack.hpp) ----------------------
  // Per-commit-slot attribution, filled only when Simulator::
  // enable_cpi_stack() was called (all-zero otherwise, keeping the disabled
  // path bit-identical to the equivalence goldens). Unit: commit slots —
  // one cycle of one commit port. When enabled the leaves obey the exact
  // identity  sum(cpi_*) == cycles * commit_width;  cpi_base counts slots
  // that retired an instruction inside the measured window (it can trail
  // `committed` by up to one commit batch when the run crosses the warm-up
  // boundary or ends mid-cycle — see ARCHITECTURE.md §13). Every leaf is a
  // plain registered u64, so merge(), the campaign store and the interval
  // sampler handle them like any other counter.
  u64 cpi_base = 0;          // useful slots: an instruction retired
  u64 cpi_fe_icache = 0;     // front end stalled on an I-cache miss
  u64 cpi_fe_fill = 0;       // front-end refill: RUU empty, pipe filling
  u64 cpi_br_squash = 0;     // post-misprediction refill (squash shadow)
  u64 cpi_ruu_full = 0;      // head executing while the RUU is full
  u64 cpi_slice_low = 0;     // head waiting for its low-slice operands
  u64 cpi_slice_chain = 0;   // head waiting on a cross-slice carry chain
  u64 cpi_exec_unit = 0;     // head op selected, execution in flight
  u64 cpi_br_resolve = 0;    // head branch done, resolution outstanding
  u64 cpi_lsq_disambig = 0;  // head load blocked on LSQ disambiguation
  u64 cpi_dcache = 0;        // head load waiting on D-cache data
  u64 cpi_partial_tag = 0;   // partial-tag speculation being verified
  u64 cpi_spec_forward = 0;  // speculative partial-match forward pending
  u64 cpi_store_data = 0;    // head store waiting for address/data
  u64 cpi_drain = 0;         // program exit drain / end-of-measurement
  u64 cpi_other = 0;         // unattributed (kept for the hard identity)

  double host_seconds = 0.0;
  // Per-phase breakdown of host_seconds (zero / disabled unless
  // Simulator::enable_host_profile() was called). Host-side only, like
  // host_seconds: excluded from equivalence comparisons.
  obs::HostProfile host_profile;

  double ipc() const {
    return cycles ? static_cast<double>(committed) / cycles : 0.0;
  }
  double branch_accuracy() const {
    return branches
               ? 1.0 - static_cast<double>(branch_mispredicts) / branches
               : 1.0;
  }
  double way_mispredict_rate() const {
    return partial_tag_accesses
               ? static_cast<double>(way_mispredicts) / partial_tag_accesses
               : 0.0;
  }
  double load_fraction() const {
    return committed ? static_cast<double>(loads) / committed : 0.0;
  }

  // Accumulates another run's counters into this one — the sampled-
  // simulation stitcher's primitive (src/sampling/). Every registered u64
  // counter (obs/interval.hpp registry, so a newly added counter merges
  // automatically) is summed; merging the per-interval stats of a sharded
  // run in any order reproduces what one monolithic accumulation would have
  // counted. `host_seconds` is also summed, which makes the merged value
  // the *serial* host cost (sum over intervals, i.e. total CPU time); the
  // wall clock of a parallel sampled run is the max over concurrent
  // intervals plus the prewarm and is reported separately by the sampling
  // engine (SampledResult::wall_sec) — never read merged host_seconds as
  // elapsed time. host_profile phases sum likewise (CPU time, not wall).
  // Defined in core/stats_merge.cpp.
  void merge(const SimStats& other);

  // Simulated commits (cycles) retired per host-second: the simulator-
  // throughput figures the campaign engine and bench drivers report.
  double commits_per_host_second() const {
    return host_seconds > 0 ? static_cast<double>(committed) / host_seconds
                            : 0.0;
  }
  double cycles_per_host_second() const {
    return host_seconds > 0 ? static_cast<double>(cycles) / host_seconds
                            : 0.0;
  }
};

// Optional per-cycle/per-event histograms (Simulator::enable_detail()):
// queue occupancies, load-to-use latencies and branch resolution delays —
// the distributions behind the headline IPC numbers.
struct DetailedStats {
  Histogram ruu_occupancy{64};         // sampled every cycle
  Histogram lsq_occupancy{32};
  Histogram load_to_use{200};          // load data time - dispatch cycle
  Histogram branch_resolve_delay{100}; // resolve cycle - dispatch cycle
  Histogram commit_width{4};           // commits per cycle
  Histogram idle_skip_length{256};     // cycles jumped per idle-skip event

  // Folds another run's distributions into this one (per-histogram sample
  // union); used when stitching per-interval detail stats.
  void merge(const DetailedStats& other) {
    ruu_occupancy.merge(other.ruu_occupancy);
    lsq_occupancy.merge(other.lsq_occupancy);
    load_to_use.merge(other.load_to_use);
    branch_resolve_delay.merge(other.branch_resolve_delay);
    commit_width.merge(other.commit_width);
    idle_skip_length.merge(other.idle_skip_length);
  }
};

}  // namespace bsp
