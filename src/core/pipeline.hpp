// In-flight instruction state for the bit-sliced out-of-order core.
//
// The core uses a unified RUU (register update unit: ROB + issue window, as
// in SimpleScalar's sim-outorder) plus a unified load/store queue. Each RUU
// entry carries per-slice-op scheduling state; values are supplied by the
// dispatch-time oracle emulator, timing is decided here.
#pragma once

#include <array>
#include <deque>
#include <vector>

#include "core/sliced_value.hpp"
#include "emu/emulator.hpp"
#include "obs/host_profile.hpp"
#include "stats/stats.hpp"

namespace bsp {

// Rename-map ids are the ISA's extended-register ids: GPRs, HI, LO, the FP
// registers, and the FP condition flag (see isa.hpp kExt*).
inline constexpr unsigned kHiReg = kExtHi;
inline constexpr unsigned kLoReg = kExtLo;
inline constexpr unsigned kNumRenameRegs = kNumExtRegs;

// Reference to a producing RUU entry; an entry index is only trusted while
// the sequence numbers still agree (entries are recycled after commit).
struct ProducerRef {
  int index = -1;  // -1: value comes from the architectural register file
  u64 seq = 0;

  bool from_regfile() const { return index < 0; }
};

// One schedulable micro-operation: a bit-slice of an instruction's execution
// (or the whole instruction for full-collect classes / unsliced machines).
struct SliceOp {
  Cycle select_cycle = kNever;  // cycle the scheduler picked it
  Cycle done_cycle = kNever;    // cycle its result slice(s) broadcast

  bool selected() const { return select_cycle != kNever; }
  bool done_by(Cycle now) const { return done_cycle <= now; }
  void reset() { select_cycle = done_cycle = kNever; }
};

// Progress of a load/store through the memory system.
enum class MemPhase : u8 {
  Agen,      // effective address still being generated / LSQ undecided
  Access,    // (loads) cache access in flight, data time is speculative
  Done,      // data final (loads) / address+data complete (stores)
};

struct RuuEntry {
  bool valid = false;
  u64 seq = 0;
  bool bogus = false;      // wrong-path: occupies resources, no effects
  u32 pc = 0;
  DecodedInst inst;
  ExecRecord oracle;       // architectural effects (valid when !bogus)

  Cycle dispatch_cycle = 0;

  // Register sources resolved at dispatch: [0]=src1, [1]=src2, [2]=HI/LO.
  std::array<ProducerRef, 3> sources;

  unsigned num_ops = 1;          // slice-ops (geometry count) or 1 (collect)
  unsigned op_latency = 1;       // cycles from select to done, per op
  SliceOrder order = SliceOrder::Collect;
  std::array<SliceOp, kMaxSlices> ops;

  // --- memory state (loads & stores) ---
  MemPhase mem_phase = MemPhase::Agen;
  Cycle lsq_decision_cycle = kNever;  // when the LSQ let the load proceed
  Cycle access_start_cycle = kNever;  // cache probe start (loads)
  Cycle data_cycle = kNever;          // load data availability (speculative
                                      // until verified)
  bool data_final = false;            // verification complete
  bool forwarded = false;             // data came from an older store
  int forward_store = -1;             // RUU index of that store
  u64 forward_store_seq = 0;
  bool used_partial_lsq = false;      // issued before full address compare
  bool used_partial_tag = false;      // accessed cache with partial tag
  bool early_miss = false;            // partial tag proved a miss early
  int predicted_way = -1;             // way-predictor choice; -2 marks a
                                      // plain hit-speculated miss, -3 a
                                      // speculative partial-match forward
  Cycle true_data_cycle = kNever;     // actual data time on a known miss
  u32 spec_forward_value = 0;         // value forwarded speculatively
  bool narrow_result = false;         // result is a sign-extension of its
                                      // low slice (NarrowWidth extension)

  // --- control state (branches/jumps) ---
  bool predicted_taken = false;
  u32 predicted_target = 0;
  u32 history_checkpoint = 0;  // gshare history at prediction time
  bool mispredicted = false;     // prediction disagrees with the oracle
  bool resolved = false;
  Cycle resolve_cycle = kNever;
  bool recovery_done = false;    // flush+redirect already performed

  // --- rename undo log ---
  // The map entries this instruction displaced at dispatch. Recovery walks
  // the squashed tail youngest-first restoring these, which rebuilds the
  // rename map in O(squashed) instead of O(RUU). A restored reference may
  // point at a producer that has since committed; such a stale reference
  // fails its sequence check everywhere it is consulted and therefore
  // behaves exactly like a from-regfile (always-ready) source.
  ProducerRef prev_dest;
  ProducerRef prev_hi;
  ProducerRef prev_lo;

  bool is_load() const { return !bogus ? oracle.is_load : inst.is_load(); }
  bool is_store() const { return !bogus ? oracle.is_store : inst.is_store(); }

  // All slice-ops complete by `now`?
  bool ops_done(Cycle now) const {
    for (unsigned i = 0; i < num_ops; ++i)
      if (!ops[i].done_by(now)) return false;
    return true;
  }
  Cycle last_op_done() const {
    Cycle m = 0;
    for (unsigned i = 0; i < num_ops; ++i) {
      if (ops[i].done_cycle == kNever) return kNever;
      m = std::max(m, ops[i].done_cycle);
    }
    return m;
  }
  void reset_ops() {
    for (auto& op : ops) op.reset();
  }
};

// A pre-decoded instruction travelling down the front end.
struct FetchSlot {
  u32 pc = 0;
  DecodedInst inst;
  Cycle dispatch_ready = 0;  // earliest cycle it can enter the RUU
  bool predicted_taken = false;
  u32 predicted_target = 0;
  u32 history_checkpoint = 0;
};

// Aggregate counters reported after a timing run.
struct SimStats {
  u64 cycles = 0;
  u64 committed = 0;
  u64 dispatched = 0;
  u64 bogus_dispatched = 0;

  u64 branches = 0;             // committed conditional branches
  u64 branch_mispredicts = 0;
  u64 early_resolved_branches = 0;  // mispredicts signalled before last slice

  u64 loads = 0;
  u64 stores = 0;
  u64 load_forwards = 0;
  u64 loads_issued_partial_lsq = 0;
  u64 partial_tag_accesses = 0;
  u64 way_mispredicts = 0;      // partial-tag way prediction replays
  u64 early_miss_detects = 0;
  u64 load_replays = 0;         // any load-latency mis-speculation replay
  u64 op_replays = 0;           // slice-ops squashed by selective replay
  u64 spec_forwards = 0;        // speculative partial-match forwards tried
  u64 spec_forward_misses = 0;  // ... that verification refuted
  u64 narrow_operands = 0;      // results eligible for narrow-width release

  u64 l1d_hits = 0;
  u64 l1d_misses = 0;

  // --- simulator-throughput accounting -------------------------------------
  // `idle_cycles_skipped` counts simulated cycles the event-driven scheduler
  // fast-forwarded because nothing could happen (see ARCHITECTURE.md §"Event-
  // driven scheduling"); it is deterministic for a given config + program.
  // `host_seconds` is the wall-clock time Simulator::run spent in its cycle
  // loop. It is host-side only: equivalence comparisons must ignore it, and
  // the campaign store records it next to duration_ms rather than with the
  // architectural counters.
  u64 idle_cycles_skipped = 0;
  double host_seconds = 0.0;
  // Per-phase breakdown of host_seconds (zero / disabled unless
  // Simulator::enable_host_profile() was called). Host-side only, like
  // host_seconds: excluded from equivalence comparisons.
  obs::HostProfile host_profile;

  double ipc() const {
    return cycles ? static_cast<double>(committed) / cycles : 0.0;
  }
  double branch_accuracy() const {
    return branches
               ? 1.0 - static_cast<double>(branch_mispredicts) / branches
               : 1.0;
  }
  double way_mispredict_rate() const {
    return partial_tag_accesses
               ? static_cast<double>(way_mispredicts) / partial_tag_accesses
               : 0.0;
  }
  double load_fraction() const {
    return committed ? static_cast<double>(loads) / committed : 0.0;
  }

  // Accumulates another run's counters into this one — the sampled-
  // simulation stitcher's primitive (src/sampling/). Every registered u64
  // counter (obs/interval.hpp registry, so a newly added counter merges
  // automatically) is summed; merging the per-interval stats of a sharded
  // run in any order reproduces what one monolithic accumulation would have
  // counted. `host_seconds` is also summed, which makes the merged value
  // the *serial* host cost (sum over intervals, i.e. total CPU time); the
  // wall clock of a parallel sampled run is the max over concurrent
  // intervals plus the prewarm and is reported separately by the sampling
  // engine (SampledResult::wall_sec) — never read merged host_seconds as
  // elapsed time. host_profile phases sum likewise (CPU time, not wall).
  // Defined in core/stats_merge.cpp.
  void merge(const SimStats& other);

  // Simulated commits (cycles) retired per host-second: the simulator-
  // throughput figures the campaign engine and bench drivers report.
  double commits_per_host_second() const {
    return host_seconds > 0 ? static_cast<double>(committed) / host_seconds
                            : 0.0;
  }
  double cycles_per_host_second() const {
    return host_seconds > 0 ? static_cast<double>(cycles) / host_seconds
                            : 0.0;
  }
};

// Optional per-cycle/per-event histograms (Simulator::enable_detail()):
// queue occupancies, load-to-use latencies and branch resolution delays —
// the distributions behind the headline IPC numbers.
struct DetailedStats {
  Histogram ruu_occupancy{64};         // sampled every cycle
  Histogram lsq_occupancy{32};
  Histogram load_to_use{200};          // load data time - dispatch cycle
  Histogram branch_resolve_delay{100}; // resolve cycle - dispatch cycle
  Histogram commit_width{4};           // commits per cycle
  Histogram idle_skip_length{256};     // cycles jumped per idle-skip event

  // Folds another run's distributions into this one (per-histogram sample
  // union); used when stitching per-interval detail stats.
  void merge(const DetailedStats& other) {
    ruu_occupancy.merge(other.ruu_occupancy);
    lsq_occupancy.merge(other.lsq_occupancy);
    load_to_use.merge(other.load_to_use);
    branch_resolve_delay.merge(other.branch_resolve_delay);
    commit_width.merge(other.commit_width);
    idle_skip_length.merge(other.idle_skip_length);
  }
};

}  // namespace bsp
