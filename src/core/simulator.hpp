// Cycle-level simulator of the bit-sliced out-of-order core (paper §6/§7).
//
// Model summary
// -------------
// * 15-stage pipeline per Figure 10: 6 front-end stages (Fetch1..DP2) before
//   an instruction enters the RUU, then at least 6 more (Sch1..RF2) before its
//   first slice-op can execute. Dependent slice-ops chain back-to-back
//   (1 cycle/slice) through the bypass network.
// * 4-wide fetch/dispatch/commit; 64-entry RUU; 32-entry unified LSQ;
//   per-slice issue queues with `int_alus` slice-ALUs each.
// * Oracle-driven front end: a functional emulator steps at dispatch, giving
//   each correct-path entry its operand values, memory address and branch
//   outcome. Wrong-path fetch dispatches "bogus" entries that occupy
//   resources but have no architectural effects (as in sim-outorder).
// * Speculative scheduling with selective replay: load consumers are woken
//   assuming an L1 hit; when a load's data is re-timed (miss, way
//   mispredict, LSQ violation), a relaxation pass reverts every slice-op
//   whose select cycle is no longer legal and they re-issue later.
// * Co-simulation: a second emulator steps at commit and every architectural
//   effect is compared; any divergence aborts the run. SimOptions selects the
//   checking cadence: `full` (every commit, the default), `spot:N` (the
//   checker catches up through the run_fast superblock interpreter and the
//   full ExecRecord comparison runs every Nth commit plus at every
//   mispredicted-branch, syscall and exit boundary — divergence stays
//   localised to one spot window), or `off` (no checking at all). Co-sim is
//   a pure check: SimStats are bit-identical across all three modes.
// * Event-driven scheduler core: ready ops come off a timing wheel /
//   producer waiter-lists instead of a per-cycle RUU scan, replay walks
//   consumer edges only, and fully idle cycles are skipped in one jump —
//   all bit-identical in SimStats to the stepped scan (see
//   docs/ARCHITECTURE.md §7 and tests/test_sched_equivalence.cpp);
//   SimStats::host_seconds reports host-side wall clock for throughput
//   tracking.
//
// The five partial-operand techniques of Figures 11/12 are independent
// switches in CoreConfig::techniques; slices=1 with no techniques is the
// paper's "best case" machine, slices>1 with no techniques its "simple
// pipelining" baseline.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "asm/program.hpp"
#include "branch/predictor.hpp"
#include "config/machine_config.hpp"
#include "core/pipeline.hpp"
#include "emu/checkpoint.hpp"
#include "mem/hierarchy.hpp"

namespace bsp {

namespace obs {
class TraceSink;
class IntervalSampler;
}  // namespace obs

struct SimResult {
  SimStats stats;
  bool exited = false;       // program executed SYS_EXIT
  int exit_code = 0;
  std::string error;         // non-empty on co-simulation divergence / fault
  bool ok() const { return error.empty(); }
};

// Commit-time co-simulation cadence. Co-sim is a pure check: it never feeds
// timing, so SimStats are bit-identical across all three modes (pinned by
// the golden matrix in tests/test_sched_equivalence.cpp).
enum class CosimMode {
  kFull,  // checker steps and compares at every commit (default)
  kSpot,  // catch up via run_fast; compare every Nth commit + at every
          // mispredicted-branch / syscall / exit boundary
  kOff,   // no checking: divergence goes UNDETECTED (bench/sweep use only)
};

struct SimOptions {
  CosimMode cosim = CosimMode::kFull;
  u64 cosim_period = 64;  // spot-check window N (spot mode only; >= 1)
};

// Parses a co-sim mode spec — "full", "off", "spot" or "spot:N" — into
// `out` (other fields untouched). Returns false on a malformed spec.
bool parse_cosim(const std::string& text, SimOptions* out);

// Canonical spelling of the co-sim mode: "full", "off" or "spot:N".
std::string cosim_name(const SimOptions& options);

class Simulator {
 public:
  Simulator(const MachineConfig& config, const Program& program);
  // Starts from a captured architectural state (see emu/checkpoint.hpp)
  // instead of the program's entry point: the oracle, the co-simulation
  // checker and the fetch pc all begin at the checkpoint. Caches and
  // predictors start cold — combine with run()'s warm-up to heat them.
  Simulator(const MachineConfig& config, const Program& program,
            const Checkpoint& start);
  Simulator(Simulator&&) noexcept;
  Simulator& operator=(Simulator&&) noexcept;
  ~Simulator();

  // Runs until `max_commits` instructions commit *after* the first
  // `warmup_commits` (whose statistics are discarded — caches, predictors
  // and queues stay warm, mirroring the paper's 1 B-instruction
  // fast-forward), the program exits, or an internal error occurs. May be
  // called once per Simulator instance.
  SimResult run(u64 max_commits, u64 warmup_commits = 0);

  // Selects the co-simulation cadence (default: CosimMode::kFull). Must be
  // called before run().
  void set_options(const SimOptions& options);

  // Enables a cycle-by-cycle event trace ("pipeview") on `os` for cycles in
  // [start, end): dispatches, slice-op selections, memory events, branch
  // resolutions/recoveries and commits. Must be called before run().
  // Equivalent to add_trace_sink() with an internally-owned
  // obs::PipeTextSink.
  void set_pipe_trace(std::ostream& os, Cycle start = 0, Cycle end = kNever);

  // Attaches a structured trace sink (obs/trace.hpp: Chrome trace JSON,
  // Konata, or any custom TraceSink). Not owned; must outlive run(). May be
  // called multiple times — every sink sees every event. Must be called
  // before run(). With no sinks attached the event points cost one
  // predictable branch each.
  void add_trace_sink(obs::TraceSink* sink);

  // Attaches an interval time-series sampler (obs/interval.hpp): deltas of
  // every SimStats counter every N committed instructions, warm-up
  // excluded. Not owned; must be called before run(); read
  // sampler->rows() afterwards.
  void set_interval_sampler(obs::IntervalSampler* sampler);

  // Enables CPI-stack cycle accounting (obs/cpi_stack.hpp): every
  // cycle x commit-width slot of the measured window is charged to exactly
  // one SimStats::cpi_* leaf, with sum(leaves) == cycles * commit_width as
  // a hard identity. Off by default — the disabled path's SimStats are
  // bit-identical to a build without the feature (one predictable branch
  // per loop iteration). Must be called before run().
  void enable_cpi_stack();

  // Enables host-phase profiling: SimStats::host_profile reports where
  // host_seconds went (commit/resolve/select/memory/dispatch/fetch, plus
  // nested co-sim and replay sub-phases). Costs a few steady_clock reads
  // per simulated cycle; off by default. Must be called before run().
  void enable_host_profile();

  // Number of hot-path scratch vectors / node pools whose capacity has
  // grown past its construction-time reservation (0 in steady state: the
  // dispatch/wakeup/replay paths do no heap allocation once warm). Exposed
  // for the no-reallocation regression test.
  unsigned scratch_reallocations() const;

  // Enables occupancy/latency histogram collection (small per-cycle cost).
  // Must be called before run(); read the result with detail() afterwards.
  void enable_detail();
  const DetailedStats& detail() const;

  const MachineConfig& config() const { return cfg_; }

 private:
  struct Impl;
  MachineConfig cfg_;
  std::unique_ptr<Impl> impl_;
};

// Convenience: build a simulator and run `max_commits` measured instructions
// (after an optional discarded warm-up).
SimResult simulate(const MachineConfig& config, const Program& program,
                   u64 max_commits, u64 warmup_commits = 0);

// Same, starting from a captured architectural state — the campaign
// fast-forward entry point (checkpoint from emu/checkpoint.hpp or a
// campaign ckpt-cache file).
SimResult simulate(const MachineConfig& config, const Program& program,
                   const Checkpoint& start, u64 max_commits,
                   u64 warmup_commits = 0);

}  // namespace bsp
