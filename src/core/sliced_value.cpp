#include "core/sliced_value.hpp"

#include <cassert>

namespace bsp {

SliceOrder slice_order(ExecClass cls, const CoreConfig& cfg) {
  if (!cfg.has(Technique::PartialBypass)) return SliceOrder::Collect;
  switch (cls) {
    case ExecClass::Logic:
    case ExecClass::MfHiLo:
      return cfg.has(Technique::OooSlices) ? SliceOrder::Any
                                           : SliceOrder::LowToHigh;
    case ExecClass::BranchEq:
      // The per-slice equality comparisons are independent (logic-like).
      return cfg.has(Technique::OooSlices) ? SliceOrder::Any
                                           : SliceOrder::LowToHigh;
    case ExecClass::Add:
    case ExecClass::Load:    // effective-address generation is an add
    case ExecClass::Store:
    case ExecClass::Compare: // subtract + sign test rides the carry chain
    case ExecClass::BranchSign:
    case ExecClass::ShiftLeft:
      return SliceOrder::LowToHigh;
    case ExecClass::ShiftRight:
      return SliceOrder::HighToLow;
    case ExecClass::Mul:
    case ExecClass::Div:
      return SliceOrder::Collect;
    case ExecClass::Jump:
    case ExecClass::Syscall:
      return SliceOrder::LowToHigh;  // no register sources; order irrelevant
    case ExecClass::JumpReg:
      return SliceOrder::Collect;    // needs the whole target address
    case ExecClass::FpAlu:
    case ExecClass::FpMul:
    case ExecClass::FpDiv:
    case ExecClass::FpSqrt:
    case ExecClass::FpCompare:
    case ExecClass::FpBranch:
      return SliceOrder::Collect;    // §6: FP runs on full-collect units
  }
  return SliceOrder::Collect;
}

u32 needed_source_slices(ExecClass cls, unsigned s, const SliceGeometry& g) {
  const u32 all = low_mask(g.count);
  switch (cls) {
    case ExecClass::Logic:
    case ExecClass::MfHiLo:
    case ExecClass::BranchEq:
    case ExecClass::Add:
    case ExecClass::Load:
    case ExecClass::Store:
    case ExecClass::Compare:
    case ExecClass::BranchSign:
      // Positional: slice s of the result reads slice s of each source (the
      // carry, where present, is an inter-slice dependence, not a source
      // slice requirement).
      return u32{1} << s;
    case ExecClass::ShiftLeft:
      // Result slice s of `v << k` draws on source bits at or below bit
      // (s+1)*w-1, i.e. source slices s and s-1; lower ones arrive
      // transitively through the inter-slice chain.
      return (u32{1} << s) | (s > 0 ? (u32{1} << (s - 1)) : 0);
    case ExecClass::ShiftRight:
      return (u32{1} << s) |
             (s + 1 < g.count ? (u32{1} << (s + 1)) : 0);
    case ExecClass::Mul:
    case ExecClass::Div:
    case ExecClass::JumpReg:
    case ExecClass::FpAlu:
    case ExecClass::FpMul:
    case ExecClass::FpDiv:
    case ExecClass::FpSqrt:
    case ExecClass::FpCompare:
    case ExecClass::FpBranch:
      return all;
    case ExecClass::Jump:
    case ExecClass::Syscall:
      return 0;
  }
  return all;
}

bool has_inter_slice_dep(ExecClass cls) {
  switch (cls) {
    case ExecClass::Add:
    case ExecClass::Load:
    case ExecClass::Store:
    case ExecClass::Compare:
    case ExecClass::BranchSign:
    case ExecClass::ShiftLeft:
    case ExecClass::ShiftRight:
      return true;
    case ExecClass::Logic:
    case ExecClass::MfHiLo:
    case ExecClass::BranchEq:
    case ExecClass::Mul:
    case ExecClass::Div:
    case ExecClass::Jump:
    case ExecClass::JumpReg:
    case ExecClass::Syscall:
    case ExecClass::FpAlu:
    case ExecClass::FpMul:
    case ExecClass::FpDiv:
    case ExecClass::FpSqrt:
    case ExecClass::FpCompare:
    case ExecClass::FpBranch:
      return false;
  }
  return false;
}

bool reads_amount_slice0(Op op) {
  return op == Op::SLLV || op == Op::SRLV || op == Op::SRAV;
}

}  // namespace bsp
