// Figure 5 demo: early branch misprediction detection on the li kernel.
//
// The paper's motivating example is a `lbu / andi / bne` sequence from the
// lisp interpreter: the andi clears every bit of $2 except bit 0, so the
// moment slice 0 of $2 exists, a predicted-not-taken bne can be proven
// mispredicted — the upper 24 bits are irrelevant. This program shows
// (a) the static code, (b) the per-bit detectability histogram for li, and
// (c) the IPC effect of turning early branch resolution on.
#include <iostream>

#include "config/machine_config.hpp"
#include "core/simulator.hpp"
#include "trace/studies.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace bsp;

  // (a) The Figure 5 idiom inside the generated li kernel.
  const std::string src = workload_source("li");
  const auto pos = src.find("lbu $3");
  std::cout << "li kernel mark loop (paper Figure 5 idiom):\n";
  std::cout << src.substr(pos, src.find("b next_node", pos) - pos) << "\n";

  // (b) How early are li's mispredictions provable?
  const Workload w = build_workload("li");
  EarlyBranchStudy study;
  run_trace(w.program, 10'000, 300'000, [&](const ExecRecord& rec) {
    study.observe(rec);
    return true;
  });
  std::cout << "branches: " << study.branches()
            << ", mispredictions: " << study.mispredictions()
            << " (gshare accuracy "
            << 100.0 * study.accuracy() << "%)\n";
  for (const unsigned k : {0u, 3u, 7u, 15u, 30u, 31u}) {
    std::cout << "  detectable with operand bits [0.." << k
              << "]: " << 100.0 * study.detected_by_bit(k) << "%\n";
  }

  // (c) Timing effect: slice-by-4 machine with and without early branch
  // resolution (on top of partial operand bypassing).
  const TechniqueSet bypass =
      static_cast<unsigned>(Technique::PartialBypass) |
      static_cast<unsigned>(Technique::OooSlices);
  const TechniqueSet with_eb =
      bypass | static_cast<unsigned>(Technique::EarlyBranch);
  const SimResult off = simulate(bitsliced_machine(4, bypass), w.program,
                                 200'000);
  const SimResult on = simulate(bitsliced_machine(4, with_eb), w.program,
                                200'000);
  if (!off.ok() || !on.ok()) {
    std::cerr << off.error << on.error << "\n";
    return 1;
  }
  std::cout << "\nslice-by-4 timing (200k instructions):\n"
            << "  without early branch resolution: IPC " << off.stats.ipc()
            << "\n"
            << "  with early branch resolution:    IPC " << on.stats.ipc()
            << "  (" << on.stats.early_resolved_branches
            << " branches resolved before their last slice)\n";
  return 0;
}
