// Pipeline explorer: run any workload (or an assembly file) across the
// paper's machine configurations and print a side-by-side scorecard.
//
//   pipeline_explorer [workload|path.s] [instructions]
//
// This is the tool a reader would use to answer "what does technique X buy
// on *my* code?" — it sweeps the cumulative Figure-12 stacks for both slice
// widths and reports IPC plus the mechanism-level counters behind it.
#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.hpp"
#include "config/machine_config.hpp"
#include "core/simulator.hpp"
#include "util/table.hpp"
#include "workloads/workloads.hpp"

namespace {

bsp::Program load_input(const std::string& spec) {
  using namespace bsp;
  // A path ending in .s is assembled; anything else is a workload name.
  if (spec.size() > 2 && spec.substr(spec.size() - 2) == ".s") {
    std::ifstream in(spec);
    if (!in) {
      std::cerr << "cannot open " << spec << "\n";
      std::exit(2);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const AsmResult r = assemble(ss.str());
    if (!r.ok()) {
      std::cerr << r.error_text();
      std::exit(1);
    }
    return r.program;
  }
  return build_workload(spec).program;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsp;
  const std::string spec = argc > 1 ? argv[1] : "vortex";
  const u64 instructions = argc > 2 ? std::strtoull(argv[2], nullptr, 0)
                                    : 200'000;
  const Program program = load_input(spec);

  std::cout << "input: " << spec << ", " << instructions
            << " instructions per configuration\n\n";
  const SimResult base = simulate(base_machine(), program, instructions);
  if (!base.ok()) {
    std::cerr << base.error << "\n";
    return 1;
  }
  std::cout << "base machine (ideal 1-cycle EX): IPC "
            << Table::num(base.stats.ipc(), 3) << ", branch accuracy "
            << Table::pct(base.stats.branch_accuracy()) << ", "
            << base.stats.loads << " loads / " << base.stats.stores
            << " stores\n\n";

  for (const unsigned slices : {2u, 4u}) {
    Table table({"configuration", "IPC", "vs base", "early-res branches",
                 "partial-lsq loads", "fwd loads", "tag replays",
                 "op replays"});
    TechniqueSet set = kNoTechniques;
    std::vector<std::pair<std::string, TechniqueSet>> rows;
    rows.emplace_back("simple pipelining", set);
    for (const Technique t : technique_order()) {
      set |= static_cast<unsigned>(t);
      rows.emplace_back(std::string("+") + technique_name(t), set);
    }
    for (const auto& [label, techniques] : rows) {
      const SimResult r =
          simulate(bitsliced_machine(slices, techniques), program,
                   instructions);
      if (!r.ok()) {
        std::cerr << label << ": " << r.error << "\n";
        return 1;
      }
      const SimStats& s = r.stats;
      table.add_row({label, Table::num(s.ipc(), 3),
                     Table::pct(s.ipc() / base.stats.ipc() - 1.0),
                     std::to_string(s.early_resolved_branches),
                     std::to_string(s.loads_issued_partial_lsq),
                     std::to_string(s.load_forwards),
                     std::to_string(s.way_mispredicts),
                     std::to_string(s.op_replays)});
    }
    std::cout << "slice-by-" << slices << ":\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
