// Pipeview: watch the bit-sliced pipeline execute, cycle by cycle.
//
// Runs a five-instruction dependence chain — the paper's Figure 1 program
// shape (add -> addi -> lw -> beq, plus an independent sub) — on the
// slice-by-2 machine with all techniques, and prints every dispatch,
// slice-op selection, memory event, branch resolution and commit. The trace
// makes the paper's central claim visible: dependent instructions overlap
// slice by slice instead of waiting for each other's full results.
#include <iostream>

#include "asm/assembler.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace bsp;

  // Figure 1's example sequence, adapted to assemble standalone.
  const char* source = R"(
.text
main:
  la $t0, data          # ($2 in the figure)
  li $t1, 40            # ($1)
loop:
  addu $t3, $t0, $t1    # add  R3,R2,R1
  addiu $t3, $t3, 4     # addi R3,R3,4
  lw $t4, 0($t3)        # lw   R4,0(R3)
  beq $t5, $t4, skip    # beq  R5,R4,t
  subu $t5, $t5, $t1    # sub  R5,R5,R1
skip:
  addiu $t1, $t1, -8
  bgtz $t1, loop
  li $v0, 10
  li $a0, 0
  syscall
.data
data: .space 256
)";
  const AsmResult assembled = assemble(source);
  if (!assembled.ok()) {
    std::cerr << assembled.error_text();
    return 1;
  }

  std::cout << "slice-by-2 machine, all partial-operand techniques.\n"
            << "D=dispatch  X=slice-op executes  M=memory event  "
               "B=branch resolution  C=commit\n\n";
  Simulator sim(bitsliced_machine(2, kAllTechniques), assembled.program);
  sim.set_pipe_trace(std::cout, 0, 400);
  const SimResult r = sim.run(10'000);
  if (!r.ok()) {
    std::cerr << r.error << "\n";
    return 1;
  }
  std::cout << "\n(" << r.stats.committed << " instructions in "
            << r.stats.cycles << " cycles; trace window 400 cycles)\n";
  return 0;
}
