// Custom workload walkthrough: how a user of this library brings their own
// kernel and runs the paper's full methodology over it —
//   1. write the kernel in BSP-32 assembly (here: binary search over a
//      sorted table, a classic partial-operand-friendly pattern),
//   2. trace-characterise it (Figures 2/4/6 engines),
//   3. measure the technique stack on the timing core.
#include <iostream>
#include <sstream>

#include "asm/assembler.hpp"
#include "core/simulator.hpp"
#include "trace/studies.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

// Generates a sorted table and a binary-search driver over random keys.
std::string make_binary_search_kernel() {
  using namespace bsp;
  constexpr unsigned kEntries = 4096;
  Rng rng(0xB54C);
  std::vector<u32> sorted(kEntries);
  u32 v = 0;
  for (auto& e : sorted) e = (v += 1 + (rng.next() & 0x3ff));

  std::ostringstream os;
  os << R"(.text
main:
  li $s7, 200000          # probes
  la $s0, table
  li $t9, 2463534242      # xorshift state
outer:
  sll $at, $t9, 13
  xor $t9, $t9, $at
  srl $at, $t9, 17
  xor $t9, $t9, $at
  sll $at, $t9, 5
  xor $t9, $t9, $at
  move $t0, $0            # lo index
  li $t1, 4095            # hi index
search:
  slt $at, $t1, $t0
  bne $at, $0, done       # lo > hi: not found
  addu $t2, $t0, $t1
  srl $t2, $t2, 1         # mid
  sll $t3, $t2, 2
  addu $t3, $s0, $t3
  lw $t4, 0($t3)          # table[mid]
  beq $t4, $t9, done      # found (rare)
  sltu $at, $t4, $t9
  beq $at, $0, go_left
  addiu $t0, $t2, 1       # lo = mid+1
  b search
go_left:
  addiu $t1, $t2, -1      # hi = mid-1
  b search
done:
  addiu $s7, $s7, -1
  bgtz $s7, outer
  li $v0, 10
  li $a0, 0
  syscall
.data
table:
)";
  for (std::size_t i = 0; i < sorted.size(); i += 8) {
    os << "  .word ";
    for (std::size_t j = i; j < i + 8; ++j)
      os << sorted[j] << (j + 1 < i + 8 ? ", " : "\n");
  }
  return os.str();
}

}  // namespace

int main() {
  using namespace bsp;

  // 1. Assemble.
  const AsmResult assembled = assemble(make_binary_search_kernel());
  if (!assembled.ok()) {
    std::cerr << assembled.error_text();
    return 1;
  }
  const Program& program = assembled.program;
  std::cout << "binary-search kernel: " << program.text.size()
            << " instructions, " << program.data.size() << " data bytes\n\n";

  // 2. Trace-driven characterisation, exactly as for the paper's suite.
  LsqAliasStudy lsq(32);
  PartialTagStudy tags(CacheGeometry{64 * 1024, 64, 4});
  EarlyBranchStudy branches;
  run_trace(program, 10'000, 300'000, [&](const ExecRecord& rec) {
    lsq.observe(rec);
    tags.observe(rec);
    branches.observe(rec);
    return true;
  });
  std::cout << "gshare accuracy:                    "
            << Table::pct(branches.accuracy()) << "\n"
            << "loads resolved after 9 addr bits:   "
            << Table::pct(lsq.resolved_fraction(8)) << "\n"
            << "mispredicts detectable by bit 7:    "
            << Table::pct(branches.detected_by_bit(7)) << "\n"
            << "partial-tag unique hit at 2 bits:   "
            << Table::pct(tags.fraction(2, PartialTagStudy::Outcome::SingleHit))
            << "\n\n";

  // 3. Timing: the paper's headline comparison on this kernel.
  Table table({"machine", "IPC", "vs base"});
  const double base =
      simulate(base_machine(), program, 150'000, 50'000).stats.ipc();
  table.add_row({"base (ideal EX)", Table::num(base, 3), "-"});
  for (const unsigned slices : {2u, 4u}) {
    const double simple =
        simulate(simple_pipelined_machine(slices), program, 150'000, 50'000)
            .stats.ipc();
    const double full =
        simulate(bitsliced_machine(slices, kAllTechniques), program, 150'000,
                 50'000)
            .stats.ipc();
    table.add_row({"slice-by-" + std::to_string(slices) + " simple",
                   Table::num(simple, 3), Table::pct(simple / base - 1.0)});
    table.add_row({"slice-by-" + std::to_string(slices) + " full",
                   Table::num(full, 3), Table::pct(full / base - 1.0)});
  }
  table.print(std::cout);
  std::cout << "\nBinary search is branch- and load-latency-bound: watch the "
               "partial-operand techniques close most of the naive-pipelining "
               "gap.\n";
  return 0;
}
