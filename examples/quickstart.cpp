// Quickstart: the public API end to end in ~60 lines.
//
//   1. Write a BSP-32 assembly program and assemble it.
//   2. Run it on the functional emulator.
//   3. Run it on the cycle-level bit-sliced core and compare configurations.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "asm/assembler.hpp"
#include "config/machine_config.hpp"
#include "core/simulator.hpp"
#include "emu/emulator.hpp"

int main() {
  using namespace bsp;

  // 1. A tiny kernel: sum an array of 512 words (a dependent load-add loop).
  const char* source = R"(
.text
main:
  la $s0, array          # base pointer
  li $t0, 512            # element count
  move $t1, $0           # sum
loop:
  lw $t2, 0($s0)
  addu $t1, $t1, $t2
  addiu $s0, $s0, 4
  addiu $t0, $t0, -1
  bne $t0, $0, loop
  move $a0, $t1
  li $v0, 1              # syscall: print_int
  syscall
  li $v0, 10             # syscall: exit
  li $a0, 0
  syscall
.data
array:
  .word 3, 1, 4, 1, 5, 9, 2, 6
  .space 2016            # remaining 504 words are zero
)";
  const AsmResult assembled = assemble(source);
  if (!assembled.ok()) {
    std::cerr << "assembly failed:\n" << assembled.error_text();
    return 1;
  }
  const Program& program = assembled.program;
  std::cout << "assembled " << program.text.size() << " instructions, "
            << program.data.size() << " data bytes\n";

  // 2. Functional execution (the golden reference).
  Emulator emu(program);
  emu.run(1'000'000);
  std::cout << "emulator output: \"" << emu.output() << "\" (exit code "
            << emu.exit_code() << ", " << emu.instructions_retired()
            << " instructions)\n\n";

  // 3. Timing simulation: ideal machine vs naive EX pipelining vs the
  //    paper's bit-sliced machine, all at the same clock.
  struct Case {
    const char* label;
    MachineConfig config;
  };
  const Case cases[] = {
      {"base (1-cycle EX, ideal)", base_machine()},
      {"slice-by-2, simple pipelining", simple_pipelined_machine(2)},
      {"slice-by-2, full bit-slice", bitsliced_machine(2, kAllTechniques)},
      {"slice-by-4, full bit-slice", bitsliced_machine(4, kAllTechniques)},
  };
  for (const Case& c : cases) {
    const SimResult r = simulate(c.config, program, 1'000'000);
    if (!r.ok()) {
      std::cerr << c.label << ": " << r.error << "\n";
      return 1;
    }
    std::cout << c.label << ": IPC " << r.stats.ipc() << " ("
              << r.stats.committed << " instructions, " << r.stats.cycles
              << " cycles)\n";
  }
  std::cout << "\nEvery timing run is co-simulated against the emulator at "
               "commit; a divergence would have aborted it.\n";
  return 0;
}
