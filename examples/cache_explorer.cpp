// Cache explorer: interactive-style CLI over the partial-tag machinery.
//
//   cache_explorer [size_kb] [line_bytes] [ways] [workload]
//
// Streams a workload's data accesses through the chosen cache geometry and
// reports, for every possible number of early tag bits, what a partial tag
// comparison would conclude and how accurate MRU way prediction would be —
// i.e. a single-geometry, annotated slice of paper Figure 4.
#include <cstdlib>
#include <iostream>

#include "mem/cache.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  const u32 size_kb = argc > 1 ? std::strtoul(argv[1], nullptr, 0) : 64;
  const u32 line = argc > 2 ? std::strtoul(argv[2], nullptr, 0) : 64;
  const unsigned ways = argc > 3 ? std::strtoul(argv[3], nullptr, 0) : 4;
  const std::string workload = argc > 4 ? argv[4] : "twolf";

  const CacheGeometry geom{size_kb * 1024, line, ways};
  if (!geom.valid()) {
    std::cerr << "invalid geometry (sizes must be powers of two)\n";
    return 2;
  }
  std::cout << size_kb << "KB, " << line << "B lines, " << ways
            << "-way: " << geom.num_sets() << " sets, index bits "
            << geom.offset_bits() << ".." << (geom.tag_lo_bit() - 1)
            << ", tag bits " << geom.tag_lo_bit() << "..31 ("
            << geom.tag_bits() << " bits)\n";
  std::cout << "with 16-bit address slices, "
            << (16 > geom.tag_lo_bit() ? 16 - geom.tag_lo_bit() : 0)
            << " tag bit(s) are available after the first slice\n\n";

  Cache cache(geom);
  const Workload w = build_workload(workload);

  // Track per-tag-bit outcomes and MRU way-prediction accuracy.
  const unsigned tbits = geom.tag_bits();
  std::vector<u64> zero(tbits + 1), single_hit(tbits + 1),
      single_miss(tbits + 1), mult(tbits + 1), mru_right(tbits + 1);
  u64 accesses = 0;

  run_trace(w.program, 10'000, 400'000, [&](const ExecRecord& rec) {
    if (!rec.is_load && !rec.is_store) return true;
    ++accesses;
    const auto full = cache.find(rec.mem_addr);
    u32 rng_state = static_cast<u32>(accesses);
    for (unsigned t = 1; t <= tbits; ++t) {
      const u32 m = cache.partial_match_ways(rec.mem_addr, t);
      const unsigned n = static_cast<unsigned>(std::popcount(m));
      if (n == 0) {
        ++zero[t];
      } else if (n == 1) {
        const unsigned way = static_cast<unsigned>(std::countr_zero(m));
        ++(full && *full == way ? single_hit[t] : single_miss[t]);
        if (full && *full == way) ++mru_right[t];
      } else {
        ++mult[t];
        const auto guess =
            cache.predict_way(rec.mem_addr, m, WayPolicy::MRU, &rng_state);
        if (full && guess && *guess == *full) ++mru_right[t];
      }
    }
    cache.access(rec.mem_addr, rec.is_store);
    return true;
  });

  std::cout << workload << ": " << accesses << " data accesses, "
            << 100.0 * cache.miss_rate() << "% miss rate\n\n";
  std::cout << "tag-bits  zero%   1-hit%  1-miss%  mult%   "
               "way-pred-correct%(of hits)\n";
  const u64 hits = accesses - cache.misses();
  for (unsigned t = 1; t <= tbits; ++t) {
    const auto pct = [&](u64 v) { return 100.0 * v / accesses; };
    std::cout.width(7);
    std::cout << t << "   ";
    std::cout << pct(zero[t]) << "\t" << pct(single_hit[t]) << "\t"
              << pct(single_miss[t]) << "\t" << pct(mult[t]) << "\t"
              << (hits ? 100.0 * mru_right[t] / hits : 0.0) << "\n";
  }
  std::cout << "\nReading: 'zero' rows are early, exact miss detections; "
               "'mult' rows need the MRU way predictor; with all " << tbits
            << " bits the columns equal the hit/miss rates.\n";
  return 0;
}
