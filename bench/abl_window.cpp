// Ablation: window sizing. Table 2 fixes a 64-entry RUU / 32-entry LSQ and
// 4-wide issue; this sweep varies them to show where the bit-slice
// techniques' benefit comes from — a larger window hides more of the
// EX-pipelining latency by itself, shrinking the gap the techniques close.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  Options opt = parse_options(argc, argv, "ablation: RUU/LSQ/width sizing");
  if (opt.workloads.empty()) opt.workloads = {"bzip", "li", "vortex"};
  print_header(opt, "Ablation: window and width sizing (slice-by-2)");

  struct SizeCase {
    const char* label;
    unsigned ruu, lsq, width;
  };
  const SizeCase sizes[] = {
      {"32/16, 2-wide", 32, 16, 2},
      {"64/32, 4-wide (Table 2)", 64, 32, 4},
      {"128/64, 8-wide", 128, 64, 8},
  };

  Table table({"benchmark", "window", "base IPC", "simple IPC", "full IPC",
               "technique gain"});
  for (const auto& name : opt.workload_list()) {
    const Workload w = build_workload(name);
    for (const SizeCase& sc : sizes) {
      const auto resize = [&](MachineConfig cfg) {
        cfg.core.ruu_entries = sc.ruu;
        cfg.core.lsq_entries = sc.lsq;
        cfg.core.fetch_width = sc.width;
        cfg.core.issue_width = sc.width;
        cfg.core.commit_width = sc.width;
        return cfg;
      };
      const double base = run_sim(resize(base_machine()), w.program,
                                  opt.instructions, opt.warmup)
                              .ipc();
      const double simple =
          run_sim(resize(simple_pipelined_machine(2)), w.program,
                  opt.instructions, opt.warmup)
              .ipc();
      const double full =
          run_sim(resize(bitsliced_machine(2, kAllTechniques)), w.program,
                  opt.instructions, opt.warmup)
              .ipc();
      table.add_row({name, sc.label, Table::num(base, 3),
                     Table::num(simple, 3), Table::num(full, 3),
                     Table::pct(full / simple - 1.0)});
    }
  }
  emit(opt, table);
  return 0;
}
