// Reproduces paper Table 1: per-benchmark baseline characteristics on the
// Table-2 machine — IPC, % loads, and branch prediction accuracy — next to
// the reference values that survive in the archival copy of the paper.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  const Options opt = parse_options(
      argc, argv, "table1: benchmark characteristics on the base machine");
  print_header(opt, "Table 1: benchmark programs simulated");

  Table table({"benchmark", "IPC", "% loads", "% stores", "branch acc",
               "paper branch acc"});
  double ipc_sum = 0, acc_sum = 0;
  unsigned rows = 0;
  for (const auto& name : opt.workload_list()) {
    const Workload w = build_workload(name);
    const SimStats s = run_sim(base_machine(), w.program, opt.instructions, opt.warmup);
    table.add_row({name, Table::num(s.ipc(), 2),
                   Table::pct(s.load_fraction()),
                   Table::pct(static_cast<double>(s.stores) / s.committed),
                   Table::pct(s.branch_accuracy(), 0),
                   w.info.paper_branch_accuracy
                       ? Table::pct(*w.info.paper_branch_accuracy, 0)
                       : std::string("(lost)")});
    ipc_sum += s.ipc();
    acc_sum += s.branch_accuracy();
    ++rows;
  }
  if (rows > 1)
    table.add_row({"average", Table::num(ipc_sum / rows, 2), "", "",
                   Table::pct(acc_sum / rows, 0), ""});
  emit(opt, table);
  std::cout << "Note: kernels are synthetic SPEC surrogates (DESIGN.md §3); "
               "branch accuracies are tuned to Table 1, IPC/loads are "
               "reported for reference.\n";
  return 0;
}
