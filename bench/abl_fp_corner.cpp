// Ablation validating a paper sentence (§6): "division and floating-point
// instructions require all bits to be produced before starting their
// execution. For these cases, a full 32-bit unit is needed... Our model
// accounts for all such difficult corner cases; however, they are not
// relevant to the performance of the applications we study."
//
// We check both halves: (a) an FP/div-heavy kernel gains almost nothing
// from the partial-operand techniques (its dataflow runs through
// full-collect units), while (b) the integer suite average gains a lot.
#include "common.hpp"

#include "asm/assembler.hpp"

namespace {

// A saxpy-with-reduction kernel: FP loads, mul/add chains, an FP compare,
// and an integer div sprinkled in — everything full-collect.
const char* kFpKernel = R"(
.text
main:
  li $s7, 60000
  la $s0, x
  la $s1, y
  li $t0, 0x40490fdb     # pi as the scalar
  mtc1 $t0, $f8
loop:
  andi $t1, $s7, 0xfc
  addu $t2, $s0, $t1
  addu $t3, $s1, $t1
  lwc1 $f0, 0($t2)
  lwc1 $f1, 0($t3)
  mul.s $f2, $f0, $f8    # a*x
  add.s $f3, $f2, $f1    # a*x + y
  swc1 $f3, 0($t3)
  c.lt.s $f3, $f8
  bc1f no_norm
  add.s $f4, $f4, $f3    # accumulate small values
no_norm:
  li $t4, 97
  divu $s7, $t4          # integer div in the mix (20-cycle collect)
  mfhi $t5
  addu $t6, $t6, $t5
  addiu $s7, $s7, -1
  bgtz $s7, loop
  li $v0, 10
  li $a0, 0
  syscall
.data
x: .space 256
y: .space 256
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  const Options opt = parse_options(
      argc, argv, "ablation: FP/div full-collect corner cases (paper §6)");
  print_header(opt, "Ablation: full-collect corner cases are handled but "
                    "performance-neutral");

  const AsmResult assembled = assemble(kFpKernel);
  if (!assembled.ok()) {
    std::cerr << assembled.error_text();
    return 1;
  }

  Table table({"kernel", "slice config", "simple pipelining",
               "full bit-slice", "technique gain"});
  for (const unsigned slices : {2u, 4u}) {
    const double simple =
        run_sim(simple_pipelined_machine(slices), assembled.program,
                opt.instructions, opt.warmup)
            .ipc();
    const double full =
        run_sim(bitsliced_machine(slices, kAllTechniques), assembled.program,
                opt.instructions, opt.warmup)
            .ipc();
    table.add_row({"fp/div saxpy", "slice-by-" + std::to_string(slices),
                   Table::num(simple, 3), Table::num(full, 3),
                   Table::pct(full / simple - 1.0)});
  }
  // Contrast: the integer suite's average gain at the same settings.
  for (const unsigned slices : {2u, 4u}) {
    double simple_sum = 0, full_sum = 0;
    for (const auto& name : opt.workload_list()) {
      const Workload w = build_workload(name);
      simple_sum += run_sim(simple_pipelined_machine(slices), w.program,
                            opt.instructions, opt.warmup)
                        .ipc();
      full_sum += run_sim(bitsliced_machine(slices, kAllTechniques),
                          w.program, opt.instructions, opt.warmup)
                      .ipc();
    }
    table.add_row({"integer suite avg", "slice-by-" + std::to_string(slices),
                   Table::num(simple_sum / opt.workload_list().size(), 3),
                   Table::num(full_sum / opt.workload_list().size(), 3),
                   Table::pct(full_sum / simple_sum - 1.0)});
  }
  emit(opt, table);
  std::cout << "Expected: the FP/div kernel's dependence chains run through "
               "full-collect units, so slice techniques barely move it; the "
               "integer suite gains its usual double-digit speedup.\n";
  return 0;
}
