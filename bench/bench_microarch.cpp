// Google-benchmark microbenchmarks for the simulator's hot paths: these are
// engineering benchmarks (simulator throughput), not paper reproductions —
// the per-table/figure drivers live in the sibling binaries.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "asm/assembler.hpp"
#include "branch/predictor.hpp"
#include "core/select_order.hpp"
#include "core/simulator.hpp"
#include "emu/emulator.hpp"
#include "lsq/disambig.hpp"
#include "mem/cache.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace bsp {
namespace {

void BM_SlicedAdd(benchmark::State& state) {
  const SliceGeometry g{static_cast<unsigned>(state.range(0))};
  Rng rng(1);
  u32 a = rng.next(), b = rng.next();
  for (auto _ : state) {
    a = sliced_add(g, a, b);
    b ^= a;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_SlicedAdd)->Arg(1)->Arg(2)->Arg(4);

void BM_CacheAccess(benchmark::State& state) {
  Cache cache({64 * 1024, 64, 4});
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next() & 0x3ffff, false));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_PartialMatchWays(benchmark::State& state) {
  Cache cache({64 * 1024, 64, 4});
  Rng rng(3);
  for (int i = 0; i < 4096; ++i) cache.access(rng.next(), false);
  u32 addr = 0;
  for (auto _ : state) {
    addr += 0x4111;
    benchmark::DoNotOptimize(
        cache.partial_match_ways(addr, static_cast<unsigned>(state.range(0))));
  }
}
BENCHMARK(BM_PartialMatchWays)->Arg(2)->Arg(9)->Arg(18);

void BM_GsharePredictUpdate(benchmark::State& state) {
  GsharePredictor g(64 * 1024);
  Rng rng(4);
  for (auto _ : state) {
    const u32 pc = 0x400000 + (rng.next() & 0xffc);
    const bool taken = rng.chance(2, 3);
    benchmark::DoNotOptimize(g.predict(pc));
    g.update(pc, taken);
  }
}
BENCHMARK(BM_GsharePredictUpdate);

void BM_DisambiguateLoad(benchmark::State& state) {
  Rng rng(5);
  std::vector<StoreView> stores;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i)
    stores.push_back({i, 32, rng.next(), 4, true, rng.next()});
  for (auto _ : state) {
    const LoadQuery q{16, rng.next(), 4};
    benchmark::DoNotOptimize(disambiguate_load(q, stores, true));
  }
}
BENCHMARK(BM_DisambiguateLoad)->Arg(4)->Arg(16)->Arg(31);

void BM_EmulatorStepThroughput(benchmark::State& state) {
  const Workload w = build_workload("bzip");
  Emulator emu(w.program);
  for (auto _ : state) {
    if (emu.exited()) emu.load(w.program);
    benchmark::DoNotOptimize(emu.step());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmulatorStepThroughput);

void BM_EmulatorFastRunThroughput(benchmark::State& state) {
  // Same workload as the step() benchmark above so the pair reads as a
  // speedup ratio: this is the fast-forward path campaigns use to reach
  // checkpoint regions (no ExecRecord, dense predecoded dispatch).
  const Workload w = build_workload("bzip");
  Emulator emu(w.program);
  constexpr u64 kChunk = 1 << 16;
  u64 total = 0;
  for (auto _ : state) {
    if (emu.exited()) emu.load(w.program);
    total += emu.run_fast(kChunk);
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_EmulatorFastRunThroughput);

// --- scheduler hot-loop isolation (uops.info-style attribution) -----------
// Two synthetic programs bracket the scheduler's cost structure. A serial
// dependent-add chain makes every op wait on its producer, so commits/s is
// dominated by the wakeup path (waiter lists, wheel pushes, queue_op) and
// select-order bookkeeping. A stream of independent adds whose sources are
// loop-invariant registers never registers a waiter at all, so the same
// counter isolates fetch/dispatch/rename/commit. Movement in one benchmark
// but not the other attributes a regression to the matching loop.

Program scheduler_probe_program(bool dependent) {
  std::ostringstream os;
  os << ".text\nmain:\n  li $s0, 305419896\n  li $s1, 598283921\n"
     << "  li $t0, 1\n  li $s7, 200000\nloop:\n";
  for (int i = 0; i < 64; ++i) {
    if (dependent) {
      os << "  addu $t0, $t0, $s1\n";  // chain: each op wakes the next
    } else {
      // Rotate dests; sources stay loop-invariant (ready at dispatch).
      os << "  addu $t" << (i % 8) << ", $s0, $s1\n";
    }
  }
  os << "  addiu $s7, $s7, -1\n  bgtz $s7, loop\n"
     << "  li $v0, 10\n  li $a0, 0\n  syscall\n";
  const AsmResult r = assemble(os.str());
  if (!r.ok()) std::abort();
  return r.program;
}

void BM_WakeupSelect(benchmark::State& state) {
  const Program prog = scheduler_probe_program(/*dependent=*/true);
  const MachineConfig cfg = base_machine();
  for (auto _ : state) {
    const SimResult r = simulate(cfg, prog, 20'000);
    if (!r.ok()) state.SkipWithError(r.error.c_str());
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_WakeupSelect)->Unit(benchmark::kMillisecond);

void BM_DispatchOnly(benchmark::State& state) {
  const Program prog = scheduler_probe_program(/*dependent=*/false);
  const MachineConfig cfg = base_machine();
  for (auto _ : state) {
    const SimResult r = simulate(cfg, prog, 20'000);
    if (!r.ok()) state.SkipWithError(r.error.c_str());
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_DispatchOnly)->Unit(benchmark::kMillisecond);

// The per-cycle candidate ordering in isolation: order_by_key's bucket
// path against the std::sort call it replaced, on the key distribution
// select actually sees (dense seq-derived keys, small shuffled batches).
// Arg = candidate count; BM_WakeupSelect covers the in-loop effect.
struct KeyRef {
  u64 key;
};

std::vector<KeyRef> select_probe_keys(std::size_t n) {
  // Keys mimic (seq << 3 | pos): clustered around a moving base, arriving
  // in wheel-slot order rather than age order.
  Rng rng(7);
  std::vector<KeyRef> keys;
  keys.reserve(n);
  const u64 base = u64{1} << 20;
  for (std::size_t i = 0; i < n; ++i)
    keys.push_back({base + (rng.next() & 0x3ff)});
  return keys;
}

void BM_SelectSort(benchmark::State& state) {
  const std::vector<KeyRef> cands =
      select_probe_keys(static_cast<std::size_t>(state.range(0)));
  SelectOrderScratch<KeyRef> scratch;
  scratch.init(2048, 4096);
  std::vector<KeyRef> work;
  work.reserve(cands.size());
  for (auto _ : state) {
    work = cands;
    order_by_key(work, scratch);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cands.size()));
}
BENCHMARK(BM_SelectSort)->Arg(8)->Arg(64)->Arg(256);

void BM_SelectSortStd(benchmark::State& state) {
  const std::vector<KeyRef> cands =
      select_probe_keys(static_cast<std::size_t>(state.range(0)));
  std::vector<KeyRef> work;
  work.reserve(cands.size());
  for (auto _ : state) {
    work = cands;
    std::sort(work.begin(), work.end(),
              [](const KeyRef& a, const KeyRef& b) { return a.key < b.key; });
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cands.size()));
}
BENCHMARK(BM_SelectSortStd)->Arg(8)->Arg(64)->Arg(256);

// Commit-path cost by co-simulation cadence on a commit-bound stream
// (independent adds retire at full width): Arg 0 = full, 1 = spot:64,
// 2 = off. The full-vs-spot delta is the per-commit checker price the
// spot mode amortises; spot-vs-off is the residual bookkeeping.
void BM_CommitOnly(benchmark::State& state) {
  const Program prog = scheduler_probe_program(/*dependent=*/false);
  const MachineConfig cfg = base_machine();
  SimOptions so;
  if (state.range(0) == 1) so.cosim = CosimMode::kSpot;
  if (state.range(0) == 2) so.cosim = CosimMode::kOff;
  state.SetLabel(cosim_name(so));
  for (auto _ : state) {
    Simulator sim(cfg, prog);
    sim.set_options(so);
    const SimResult r = sim.run(20'000);
    if (!r.ok()) state.SkipWithError(r.error.c_str());
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_CommitOnly)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorThroughput(benchmark::State& state) {
  const Workload w = build_workload("gzip");
  const MachineConfig cfg = state.range(0) == 0
                                ? base_machine()
                                : bitsliced_machine(
                                      static_cast<unsigned>(state.range(0)),
                                      kAllTechniques);
  // BSP_BENCH_COSIM (a parse_cosim spec) overrides the co-simulation
  // cadence; unset means the default full check, which is what recorded
  // baselines and --check use. scripts/bench_perf.sh --paired sets it on
  // the new side only, so the A/B compares like-named benchmarks while
  // the new binary runs the cadence the speedup is claimed under.
  SimOptions so;
  if (const char* spec = std::getenv("BSP_BENCH_COSIM"))
    if (!parse_cosim(spec, &so)) std::abort();
  for (auto _ : state) {
    Simulator sim(cfg, w.program);
    sim.set_options(so);
    const SimResult r = sim.run(20'000);
    if (!r.ok()) state.SkipWithError(r.error.c_str());
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_SimulatorThroughput)->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The cost of the observability layer when a sink IS attached: the same run
// as BM_SimulatorThroughput/2 but with every event materialised and handed
// to a do-nothing sink. The delta against the plain benchmark is the
// all-in price of structured tracing; with no sink attached the event
// points must be free (acceptance: <= 2% on BM_SimulatorThroughput).
void BM_SimulatorThroughputTraced(benchmark::State& state) {
  struct CountingSink final : obs::TraceSink {
    u64 events = 0;
    void event(const obs::TraceEvent& ev) override {
      ++events;
      benchmark::DoNotOptimize(ev.cycle);
    }
  };
  const Workload w = build_workload("gzip");
  const MachineConfig cfg = bitsliced_machine(2, kAllTechniques);
  u64 events = 0;
  for (auto _ : state) {
    CountingSink sink;
    Simulator sim(cfg, w.program);
    sim.add_trace_sink(&sink);
    const SimResult r = sim.run(20'000);
    if (!r.ok()) state.SkipWithError(r.error.c_str());
    events += sink.events;
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  state.counters["events"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_SimulatorThroughputTraced)->Unit(benchmark::kMillisecond);

// The cost of CPI-stack cycle accounting: the base-machine run of
// BM_SimulatorThroughput/0 with every commit slot charged to a stall
// leaf. The classify walk only runs on stalled cycles, so the delta
// against the plain benchmark is the whole accounting price
// (acceptance: < 10% on BM_SimulatorThroughput/0; with accounting off
// the charging path must be free — the golden tests pin bit-identity).
void BM_SimulatorThroughputCpiStack(benchmark::State& state) {
  const Workload w = build_workload("gzip");
  const MachineConfig cfg = base_machine();
  for (auto _ : state) {
    Simulator sim(cfg, w.program);
    sim.enable_cpi_stack();
    const SimResult r = sim.run(20'000);
    if (!r.ok()) state.SkipWithError(r.error.c_str());
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_SimulatorThroughputCpiStack)->Unit(benchmark::kMillisecond);

// Ditto for host-phase profiling: a handful of steady_clock reads per
// simulated cycle.
void BM_SimulatorThroughputProfiled(benchmark::State& state) {
  const Workload w = build_workload("gzip");
  const MachineConfig cfg = bitsliced_machine(2, kAllTechniques);
  for (auto _ : state) {
    Simulator sim(cfg, w.program);
    sim.enable_host_profile();
    const SimResult r = sim.run(20'000);
    if (!r.ok()) state.SkipWithError(r.error.c_str());
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_SimulatorThroughputProfiled)->Unit(benchmark::kMillisecond);

// Whole-program throughput across the paper's cumulative technique stacks
// (the Figure 11/12 sweep points for 4 slices): one benchmark per stack
// point, reporting commits/sec. This is the simulator-throughput baseline
// the campaign engine's wall-clock budgeting is calibrated against.
void BM_TechniqueStackThroughput(benchmark::State& state) {
  static const std::vector<StackPoint> stack = technique_stack(4);
  const StackPoint& point = stack[static_cast<std::size_t>(state.range(0))];
  const Workload w = build_workload("gzip");
  state.SetLabel(point.label);
  constexpr u64 kCommits = 10'000;
  for (auto _ : state) {
    const SimResult r = simulate(point.config, w.program, kCommits);
    if (!r.ok()) state.SkipWithError(r.error.c_str());
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  state.SetItemsProcessed(state.iterations() * kCommits);
}
BENCHMARK(BM_TechniqueStackThroughput)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond);

void BM_AssembleWorkload(benchmark::State& state) {
  const std::string src = workload_source("gcc");
  for (auto _ : state) {
    benchmark::DoNotOptimize(assemble(src));
  }
  state.SetBytesProcessed(state.iterations() * src.size());
}
BENCHMARK(BM_AssembleWorkload)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bsp
