// Reproduces paper Figure 6: early detection of conditional-branch
// mispredictions. Runs the Table-2 64k-entry gshare over each benchmark's
// conditional branches and, for every misprediction, records the lowest
// operand bit position at which it becomes provable.
//
// Expected shape (paper §5.3): a substantial fraction (paper: ~28 % average)
// is detectable from bit 0 alone, most equality-branch mispredictions are
// detectable within the first 8 bits, and a spike sits at bit 31 (sign-test
// branches and equality proofs). beq/bne account for roughly 61 % of dynamic
// branches and 48 % of mispredictions.
#include "common.hpp"

#include "trace/studies.hpp"
#include "trace/trace.hpp"
#include "util/chart.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  const Options opt = parse_options(
      argc, argv, "fig6: early branch misprediction detection");
  print_header(opt, "Figure 6: early branch misprediction detection");

  std::vector<std::string> header = {"bit"};
  for (const auto& name : opt.workload_list()) header.push_back(name);
  header.push_back("average");
  Table table(std::move(header));

  std::vector<EarlyBranchStudy> studies;
  for (const auto& name : opt.workload_list()) {
    EarlyBranchStudy study;
    const Workload w = build_workload(name);
    run_trace(w.program, opt.skip, opt.instructions,
              [&](const ExecRecord& rec) {
                study.observe(rec);
                return true;
              });
    studies.push_back(std::move(study));
  }

  for (unsigned k = 0; k < kWordBits; ++k) {
    std::vector<std::string> row = {std::to_string(k)};
    double sum = 0;
    for (const auto& s : studies) {
      row.push_back(Table::pct(s.detected_by_bit(k), 0));
      sum += s.detected_by_bit(k);
    }
    row.push_back(Table::pct(sum / studies.size(), 0));
    table.add_row(std::move(row));
  }
  emit(opt, table);

  {
    LineChart chart(
        "cumulative fraction of mispredictions detectable by operand bit k",
        64, 14);
    chart.set_y_range(0.0, 1.0);
    chart.set_x_label("operand bits available (0 .. 31)");
    std::vector<double> avg(kWordBits, 0.0);
    for (const auto& s : studies)
      for (unsigned k = 0; k < kWordBits; ++k)
        avg[k] += s.detected_by_bit(k) / studies.size();
    chart.add_series("average", std::move(avg));
    if (studies.size() == workload_names().size()) {
      // Show the extremes next to the average, as the paper's figure does.
      std::vector<double> li_series, mcf_series;
      for (unsigned k = 0; k < kWordBits; ++k) {
        li_series.push_back(studies[5].detected_by_bit(k));   // li
        mcf_series.push_back(studies[6].detected_by_bit(k));  // mcf
      }
      chart.add_series("li", std::move(li_series));
      chart.add_series("mcf", std::move(mcf_series));
    }
    chart.print(std::cout);
    std::cout << "\n";
  }

  // §5.3 summary statistics.
  u64 branches = 0, eq_branches = 0, mispred = 0, eq_mispred = 0;
  double det0 = 0, det7 = 0;
  for (const auto& s : studies) {
    branches += s.branches();
    eq_branches += s.eq_branches();
    mispred += s.mispredictions();
    eq_mispred += s.eq_mispredictions();
    det0 += s.detected_by_bit(0);
    det7 += s.detected_by_bit(7);
  }
  std::cout << "beq/bne share of dynamic branches:  "
            << Table::pct(static_cast<double>(eq_branches) / branches)
            << "   (paper: 61%)\n"
            << "beq/bne share of mispredictions:    "
            << Table::pct(static_cast<double>(eq_mispred) / mispred)
            << "   (paper: 48%)\n"
            << "avg mispredicts detected at bit 0:  "
            << Table::pct(det0 / studies.size()) << "   (paper: 28%)\n"
            << "avg mispredicts detected by bit 7:  "
            << Table::pct(det7 / studies.size())
            << "   (paper: most beq/bne cases within 8 bits)\n";
  return 0;
}
