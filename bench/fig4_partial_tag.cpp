// Reproduces paper Figure 4: partial tag matching in set-associative caches.
// Streams each benchmark's data accesses through six cache geometries —
// {64KB/64B-line, 8KB/32B-line} x {2,4,8}-way — classifying what a partial
// tag comparison with t bits would conclude, for t = 1 .. full tag width.
// The paper shows mcf and twolf; --workload selects others.
//
// Expected shape: as tag bits grow the series converge to "single hit"
// (the cache hit rate) and "zero match" (the miss rate); the dangerous
// "single miss" category stays tiny once a few tag bits are available.
#include "common.hpp"

#include "trace/studies.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  Options opt = parse_options(
      argc, argv, "fig4: partial tag matching characterisation");
  if (opt.workloads.empty()) opt.workloads = {"mcf", "twolf"};
  print_header(opt, "Figure 4: partial tag matching");

  struct GeometryCase {
    const char* label;
    u32 size, line;
  };
  const GeometryCase sizes[] = {{"64KB, 64B lines", 64 * 1024, 64},
                                {"8KB, 32B lines", 8 * 1024, 32}};
  const unsigned ways_list[] = {2, 4, 8};

  for (const auto& name : opt.workload_list()) {
    const Workload w = build_workload(name);
    for (const auto& g : sizes) {
      for (const unsigned ways : ways_list) {
        PartialTagStudy study(CacheGeometry{g.size, g.line, ways});
        run_trace(w.program, opt.skip, opt.instructions,
                  [&](const ExecRecord& rec) {
                    study.observe(rec);
                    return true;
                  });
        std::cout << name << " - " << g.label << ", " << ways << "-way ("
                  << study.accesses() << " accesses):\n";
        Table table({"tag bits", "zero match", "single entry - hit",
                     "single entry - miss", "mult match"});
        for (unsigned t = 1; t <= study.tag_bits(); ++t) {
          table.add_row(
              {std::to_string(t),
               Table::pct(study.fraction(t, PartialTagStudy::Outcome::ZeroMatch)),
               Table::pct(study.fraction(t, PartialTagStudy::Outcome::SingleHit)),
               Table::pct(study.fraction(t, PartialTagStudy::Outcome::SingleMiss)),
               Table::pct(study.fraction(t, PartialTagStudy::Outcome::MultMatch))});
        }
        emit(opt, table);
      }
    }
  }
  return 0;
}
