// Reproduces paper Figure 11: IPC of the bit-sliced microarchitecture.
// For every benchmark: the ideal base machine (single-cycle EX), then the
// slice-by-2 and slice-by-4 machines with the partial-operand techniques
// enabled cumulatively in the paper's order (simple pipelining first).
//
// Expected shape: simple pipelining loses substantial IPC against the base;
// the full slice-by-2 stack recovers to within a few percent of base (the
// paper reports a 0.01 % average slowdown and a 16 % speedup over simple
// pipelining); slice-by-4 recovers much of, but not all, the loss (paper:
// 18 % below base, 44 % over simple pipelining). Also reports the §7.1
// partial-tag way-mispredict (replay) rates (~2 % by-2, ~1 % by-4).
#include "common.hpp"

#include "util/chart.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  const Options opt =
      parse_options(argc, argv, "fig11: IPC of the bit-sliced machine");
  print_header(opt, "Figure 11: IPC results for the bit-sliced "
                    "microarchitecture");

  for (const unsigned slices : {2u, 4u}) {
    const auto stack = technique_stack(slices);
    std::vector<std::string> header = {"benchmark", "base (ideal)"};
    for (const auto& p : stack) header.push_back(p.label);
    header.push_back("tag replay rate");
    Table table(std::move(header));

    double base_sum = 0, simple_sum = 0, full_sum = 0, replay_sum = 0;
    unsigned rows = 0;
    std::vector<double> avg_stack(stack.size(), 0.0);

    // One independent simulation bundle per workload, run in parallel.
    struct WorkloadResult {
      SimStats base;
      std::vector<SimStats> stack_stats;
    };
    const auto& names = opt.workload_list();
    const auto results = parallel_map<WorkloadResult>(
        names.size(),
        [&](std::size_t wi) {
          const Workload w = build_workload(names[wi]);
          WorkloadResult r;
          r.base =
              run_sim(base_machine(), w.program, opt.instructions, opt.warmup);
          for (const auto& p : stack)
            r.stack_stats.push_back(
                run_sim(p.config, w.program, opt.instructions, opt.warmup));
          return r;
        },
        opt.jobs);

    for (std::size_t wi = 0; wi < names.size(); ++wi) {
      const WorkloadResult& wr = results[wi];
      std::vector<std::string> row = {names[wi]};
      row.push_back(Table::num(wr.base.ipc(), 3));
      for (std::size_t i = 0; i < stack.size(); ++i) {
        row.push_back(Table::num(wr.stack_stats[i].ipc(), 3));
        avg_stack[i] += wr.stack_stats[i].ipc();
      }
      const SimStats& first = wr.stack_stats.front();
      const SimStats& last = wr.stack_stats.back();
      row.push_back(Table::pct(last.way_mispredict_rate()));
      table.add_row(std::move(row));
      base_sum += wr.base.ipc();
      simple_sum += first.ipc();
      full_sum += last.ipc();
      replay_sum += last.way_mispredict_rate();
      ++rows;
    }
    std::cout << "slice-by-" << slices << ":\n";
    emit(opt, table);

    BarChart chart("average IPC, slice-by-" + std::to_string(slices) +
                   " ('|' marks the ideal base machine)");
    chart.set_reference(base_sum / rows);
    for (std::size_t i = 0; i < stack.size(); ++i)
      chart.add_bar(stack[i].label, avg_stack[i] / rows);
    chart.print(std::cout);
    std::cout << "\n";
    std::cout << "averages: base " << Table::num(base_sum / rows, 3)
              << ", simple pipelining " << Table::num(simple_sum / rows, 3)
              << ", full bit-slice " << Table::num(full_sum / rows, 3) << "\n"
              << "full vs base:  "
              << Table::pct(full_sum / base_sum - 1.0)
              << (slices == 2 ? "   (paper: -0.01%)" : "   (paper: -18%)")
              << "\n"
              << "full vs simple pipelining: "
              << Table::pct(full_sum / simple_sum - 1.0)
              << (slices == 2 ? "   (paper: +16%)" : "   (paper: +44%)")
              << "\n"
              << "avg partial-tag replay rate: "
              << Table::pct(replay_sum / rows)
              << (slices == 2 ? "   (paper: ~2%)" : "   (paper: ~1%)")
              << "\n\n";
  }
  return 0;
}
