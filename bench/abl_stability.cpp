// Ablation: measurement-window stability. The paper simulates 500 M
// instructions after a 1 B fast-forward; our kernels reach steady state far
// sooner. This sweep shows IPC as a function of the window length so the
// default 200 k-instruction window used by the other benches can be judged.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  Options opt = parse_options(argc, argv, "ablation: window stability");
  if (opt.workloads.empty()) opt.workloads = {"bzip", "gcc", "mcf"};
  print_header(opt, "Ablation: IPC vs simulation window (slice-by-2, all "
                    "techniques)");

  const u64 windows[] = {25'000, 50'000, 100'000, 200'000, 400'000, 800'000};
  Table table({"benchmark", "warmup", "25k", "50k", "100k", "200k", "400k",
               "800k", "max drift vs 800k"});
  for (const auto& name : opt.workload_list()) {
    const Workload w = build_workload(name);
    const MachineConfig cfg = bitsliced_machine(2, kAllTechniques);
    // Cold (from reset) vs warmed (after the default discard window): the
    // warmed rows justify the --warmup default the other benches use.
    for (const u64 warm : {u64{0}, opt.warmup}) {
      std::vector<double> ipcs;
      std::vector<std::string> row = {name, std::to_string(warm)};
      for (const u64 n : windows) {
        ipcs.push_back(run_sim(cfg, w.program, n, warm).ipc());
        row.push_back(Table::num(ipcs.back(), 3));
      }
      double drift = 0;
      // Drift of the 100k+ windows relative to the longest run (short
      // windows legitimately include transient effects).
      for (std::size_t i = 2; i + 1 < ipcs.size(); ++i)
        drift = std::max(drift, std::abs(ipcs[i] / ipcs.back() - 1.0));
      row.push_back(Table::pct(drift));
      table.add_row(std::move(row));
    }
  }
  emit(opt, table);
  std::cout << "Measurement windows start either at reset (warmup 0) or "
               "after the discarded warm-up the other benches use.\n";
  return 0;
}
