// Ablation: way-selection policy for partial tag matching. The paper uses
// MRU (§7); this sweep compares MRU against first-match and random selection
// on the full bit-sliced machine and reports the way-mispredict (replay)
// rate and the resulting IPC.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  Options opt = parse_options(argc, argv,
                              "ablation: partial-tag way-selection policy");
  if (opt.workloads.empty()) opt.workloads = {"bzip", "gcc", "mcf", "twolf"};
  print_header(opt, "Ablation: way-prediction policy (slice-by-2, all "
                    "techniques)");

  struct PolicyCase {
    const char* label;
    WayPolicy policy;
  };
  const PolicyCase policies[] = {{"MRU", WayPolicy::MRU},
                                 {"first-match", WayPolicy::FirstMatch},
                                 {"random", WayPolicy::Random}};

  Table table({"benchmark", "policy", "tag replay rate", "IPC"});
  for (const auto& name : opt.workload_list()) {
    const Workload w = build_workload(name);
    for (const auto& p : policies) {
      MachineConfig cfg = bitsliced_machine(2, kAllTechniques);
      cfg.core.way_policy = p.policy;
      const SimStats s = run_sim(cfg, w.program, opt.instructions, opt.warmup);
      table.add_row({name, p.label, Table::pct(s.way_mispredict_rate()),
                     Table::num(s.ipc(), 3)});
    }
  }
  emit(opt, table);
  std::cout << "Expected: MRU tracks temporal locality and keeps the replay "
               "rate lowest, matching the paper's choice.\n";
  return 0;
}
