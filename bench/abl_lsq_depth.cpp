// Ablation: does the Figure-2 convergence point depend on LSQ depth?
// Sweeps 8/16/32/64-entry LSQs and reports the fraction of loads resolved
// after k compared bits. Deeper queues hold more stores, so more bits are
// needed before all candidates are ruled out — the paper's 32-entry result
// (converged by ~9 bits) should sit between the 16- and 64-entry curves.
#include "common.hpp"

#include "trace/studies.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  Options opt = parse_options(argc, argv, "ablation: LSQ depth vs Figure 2");
  if (opt.workloads.empty()) opt.workloads = {"gcc"};
  print_header(opt, "Ablation: LSQ depth sensitivity of early load-store "
                    "disambiguation");

  const unsigned depths[] = {8, 16, 32, 64};
  for (const auto& name : opt.workload_list()) {
    std::vector<LsqAliasStudy> studies;
    for (const unsigned d : depths) studies.emplace_back(d);
    const Workload w = build_workload(name);
    run_trace(w.program, opt.skip, opt.instructions,
              [&](const ExecRecord& rec) {
                for (auto& s : studies) s.observe(rec);
                return true;
              });

    std::cout << name << ": fraction of loads resolved after k compared "
                 "bits\n";
    Table table({"bits", "lsq=8", "lsq=16", "lsq=32", "lsq=64"});
    for (unsigned k = 0; k < kDisambigBits; ++k) {
      table.add_row({std::to_string(k + 1),
                     Table::pct(studies[0].resolved_fraction(k)),
                     Table::pct(studies[1].resolved_fraction(k)),
                     Table::pct(studies[2].resolved_fraction(k)),
                     Table::pct(studies[3].resolved_fraction(k))});
    }
    emit(opt, table);
  }
  return 0;
}
