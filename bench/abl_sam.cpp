// Ablation: partial tag matching vs sum-addressed memory (SAM, the paper's
// ref [18]), and their combination — §5.2 notes the two are "orthogonal, and
// both could be combined in a single design". SAM folds the base+offset add
// into the cache decoder (a full-tag access starts at the agen's select);
// partial tag matching instead indexes speculatively with the low address
// slice. Reported on the slice-by-4 machine, where address generation takes
// the longest.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  Options opt = parse_options(argc, argv,
                              "ablation: partial tag vs sum-addressed memory");
  print_header(opt, "Ablation: partial tag matching vs sum-addressed memory "
                    "(slice-by-4)");

  const TechniqueSet common =
      static_cast<unsigned>(Technique::PartialBypass) |
      static_cast<unsigned>(Technique::OooSlices) |
      static_cast<unsigned>(Technique::EarlyBranch) |
      static_cast<unsigned>(Technique::EarlyLsq);
  struct Case {
    const char* label;
    TechniqueSet set;
  };
  const Case cases[] = {
      {"neither", common},
      {"partial tag", common | static_cast<unsigned>(Technique::PartialTag)},
      {"SAM", common | static_cast<unsigned>(Technique::SumAddressed)},
      {"both", common | static_cast<unsigned>(Technique::PartialTag) |
                   static_cast<unsigned>(Technique::SumAddressed)},
  };

  Table table({"benchmark", "neither", "partial tag", "SAM", "both"});
  std::array<double, 4> sums{};
  unsigned rows = 0;
  for (const auto& name : opt.workload_list()) {
    const Workload w = build_workload(name);
    std::vector<std::string> row = {name};
    for (std::size_t i = 0; i < 4; ++i) {
      const SimStats s = run_sim(bitsliced_machine(4, cases[i].set),
                                 w.program, opt.instructions, opt.warmup);
      row.push_back(Table::num(s.ipc(), 3));
      sums[i] += s.ipc();
    }
    table.add_row(std::move(row));
    ++rows;
  }
  table.add_row({"average", Table::num(sums[0] / rows, 3),
                 Table::num(sums[1] / rows, 3), Table::num(sums[2] / rows, 3),
                 Table::num(sums[3] / rows, 3)});
  emit(opt, table);
  std::cout << "Expected: each helps alone; the combination at least matches "
               "the better of the two (the paper calls them orthogonal).\n";
  return 0;
}
