// Reproduces paper Figure 2: early load-store disambiguation. For every load
// inserted into a 32-entry LSQ, classify the comparison against prior store
// addresses as the number of compared low-order address bits grows (bit 2
// through bit 31). The paper shows bzip and gcc; --workload selects others.
//
// Expected shape: after ~9 compared bits (bit index 7 counting from bit 2)
// virtually all loads are resolved — either every prior store is ruled out
// or a unique forwarding store has been found.
#include "common.hpp"

#include "trace/studies.hpp"
#include "trace/trace.hpp"
#include "util/chart.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  Options opt = parse_options(
      argc, argv, "fig2: early load-store disambiguation characterisation");
  if (opt.workloads.empty()) opt.workloads = {"bzip", "gcc"};
  print_header(opt, "Figure 2: early load-store disambiguation (32-entry LSQ)");

  LineChart chart("fraction of loads fully disambiguated vs compared bits",
                  60, 14);
  chart.set_y_range(0.0, 1.0);
  chart.set_x_label("address bits compared (bit 2 .. bit 31)");

  for (const auto& name : opt.workload_list()) {
    const Workload w = build_workload(name);
    LsqAliasStudy study(32);
    run_trace(w.program, opt.skip, opt.instructions,
              [&](const ExecRecord& rec) {
                study.observe(rec);
                return true;
              });

    std::cout << name << " (" << study.loads() << " loads):\n";
    std::vector<std::string> header = {"addr bit"};
    for (unsigned c = 0; c < kNumAliasCategories; ++c)
      header.push_back(alias_category_name(static_cast<AliasCategory>(c)));
    header.push_back("resolved");
    Table table(std::move(header));
    for (unsigned k = 0; k < kDisambigBits; ++k) {
      std::vector<std::string> row = {std::to_string(k + kDisambigLoBit)};
      for (unsigned c = 0; c < kNumAliasCategories; ++c)
        row.push_back(
            Table::pct(study.fraction(k, static_cast<AliasCategory>(c))));
      row.push_back(Table::pct(study.resolved_fraction(k)));
      table.add_row(std::move(row));
    }
    emit(opt, table);
    // The paper's headline claim for this figure: 9 compared bits (address
    // bits 2..10, i.e. category index 8) resolve essentially every load.
    std::cout << "resolved after 9 compared bits (through address bit 10): "
              << Table::pct(study.resolved_fraction(8)) << "\n\n";

    std::vector<double> series;
    for (unsigned k = 0; k < kDisambigBits; ++k)
      series.push_back(study.resolved_fraction(k));
    chart.add_series(name, std::move(series));
  }
  chart.print(std::cout);
  return 0;
}
