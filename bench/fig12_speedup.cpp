// Reproduces paper Figure 12: speedup of bit-slice pipelining over simple
// pipelining, decomposed by technique. Each technique's contribution is the
// IPC gained when it is added on top of the previous stack (the paper's
// cumulative order: partial operand bypassing, out-of-order slices, early
// branch resolution, early l/s disambiguation, partial tag matching).
//
// Expected shape: partial operand bypassing provides roughly half the
// benefit; the paper's three new techniques add a further ~8 % (slice-by-2)
// and ~13 % (slice-by-4) on average.
#include "common.hpp"

#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  const Options opt = parse_options(
      argc, argv, "fig12: speedup decomposition over simple pipelining");
  print_header(opt, "Figure 12: speed-up of bit-slice pipelining over simple "
                    "pipelining");

  for (const unsigned slices : {2u, 4u}) {
    const auto stack = technique_stack(slices);
    std::vector<std::string> header = {"benchmark"};
    for (std::size_t i = 1; i < stack.size(); ++i)
      header.push_back(stack[i].label);
    header.push_back("total");
    header.push_back("new techniques");
    Table table(std::move(header));

    double total_sum = 0, new_sum = 0, bypass_sum = 0;
    unsigned rows = 0;
    const auto& names = opt.workload_list();
    const auto all_ipc = parallel_map<std::vector<double>>(
        names.size(),
        [&](std::size_t wi) {
          const Workload w = build_workload(names[wi]);
          std::vector<double> ipc;
          for (const auto& p : stack)
            ipc.push_back(
                run_sim(p.config, w.program, opt.instructions, opt.warmup)
                    .ipc());
          return ipc;
        },
        opt.jobs);
    for (std::size_t wi = 0; wi < names.size(); ++wi) {
      const std::string& name = names[wi];
      const std::vector<double>& ipc = all_ipc[wi];

      std::vector<std::string> row = {name};
      for (std::size_t i = 1; i < ipc.size(); ++i)
        row.push_back(Table::pct(ipc[i] / ipc[0] - ipc[i - 1] / ipc[0]));
      const double total = ipc.back() / ipc.front() - 1.0;
      // "New techniques" = everything beyond partial operand bypassing
      // (ipc[1]), i.e. the three §5 proposals plus out-of-order slices.
      const double new_part = (ipc.back() - ipc[1]) / ipc.front();
      row.push_back(Table::pct(total));
      row.push_back(Table::pct(new_part));
      table.add_row(std::move(row));
      total_sum += total;
      new_sum += new_part;
      bypass_sum += ipc[1] / ipc[0] - 1.0;
      ++rows;
    }
    std::cout << "slice-by-" << slices << " (contributions are cumulative "
              << "IPC gains relative to simple pipelining):\n";
    emit(opt, table);
    std::cout << "average total speedup: " << Table::pct(total_sum / rows)
              << (slices == 2 ? "   (paper: 16%)" : "   (paper: 44%)") << "\n"
              << "  from partial operand bypassing: "
              << Table::pct(bypass_sum / rows)
              << "   (paper: roughly half the benefit)\n"
              << "  from the newly proposed techniques: "
              << Table::pct(new_sum / rows)
              << (slices == 2 ? "   (paper: +8%)" : "   (paper: +13%)")
              << "\n\n";
  }
  return 0;
}
