// Ablation: seed sensitivity. The synthetic kernels are parameterised by a
// PRNG seed (data layouts, key streams); the reproduced conclusions must not
// hinge on one lucky seed. Runs the headline comparison (base vs simple
// pipelining vs full bit-slice, slice-by-2) across several seeds and reports
// the spread.
#include "common.hpp"

#include "stats/stats.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  Options opt = parse_options(argc, argv, "ablation: workload seed spread");
  if (opt.workloads.empty()) opt.workloads = {"bzip", "gcc", "li", "vortex"};
  print_header(opt, "Ablation: seed sensitivity of the headline speedup");

  const u64 seeds[] = {0x5eed, 0xD00D, 0xBEE5, 0x1234, 0xFEED};
  Table table({"benchmark", "seed", "base IPC", "simple IPC", "full IPC",
               "full/simple", "full/base"});
  for (const auto& name : opt.workload_list()) {
    RunningMean speedup, recovery;
    for (const u64 seed : seeds) {
      WorkloadParams params;
      params.seed = seed;
      const Workload w = build_workload(name, params);
      const double base =
          run_sim(base_machine(), w.program, opt.instructions, opt.warmup).ipc();
      const double simple =
          run_sim(simple_pipelined_machine(2), w.program, opt.instructions, opt.warmup)
              .ipc();
      const double full =
          run_sim(bitsliced_machine(2, kAllTechniques), w.program,
                  opt.instructions, opt.warmup)
              .ipc();
      table.add_row({name, std::to_string(seed), Table::num(base, 3),
                     Table::num(simple, 3), Table::num(full, 3),
                     Table::pct(full / simple - 1.0),
                     Table::pct(full / base - 1.0)});
      speedup.add(full / simple - 1.0);
      recovery.add(full / base - 1.0);
    }
    table.add_row({name, "spread",
                   "", "", "",
                   Table::pct(speedup.min()) + ".." + Table::pct(speedup.max()),
                   Table::pct(recovery.min()) + ".." +
                       Table::pct(recovery.max())});
  }
  emit(opt, table);
  std::cout << "Expected: the full bit-slice machine beats simple pipelining "
               "for every seed; spreads of a few points are workload noise.\n";
  return 0;
}
