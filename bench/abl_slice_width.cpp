// Ablation: slice-width sweep. The paper evaluates slice-by-2 and
// slice-by-4; this extends the sweep to slice-by-8 (4-bit slices) and the
// degenerate slice-by-1 to expose the trend: finer slices mean higher
// potential clock rates (less logic per stage) but a longer in-order carry
// chain that partial-operand techniques must hide.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  Options opt = parse_options(argc, argv, "ablation: slice width sweep");
  if (opt.workloads.empty()) opt.workloads = {"bzip", "ijpeg", "li", "vortex"};
  print_header(opt, "Ablation: slice width (all techniques enabled)");

  Table table({"benchmark", "slices=1 (base)", "2 (16-bit)", "4 (8-bit)",
               "8 (4-bit)", "simple x2", "simple x4", "simple x8"});
  for (const auto& name : opt.workload_list()) {
    const Workload w = build_workload(name);
    std::vector<std::string> row = {name};
    row.push_back(Table::num(
        run_sim(base_machine(), w.program, opt.instructions, opt.warmup).ipc(), 3));
    for (const unsigned s : {2u, 4u, 8u})
      row.push_back(Table::num(
          run_sim(bitsliced_machine(s, kAllTechniques), w.program,
                  opt.instructions, opt.warmup)
              .ipc(),
          3));
    for (const unsigned s : {2u, 4u, 8u})
      row.push_back(Table::num(
          run_sim(simple_pipelined_machine(s), w.program, opt.instructions, opt.warmup)
              .ipc(),
          3));
    table.add_row(std::move(row));
  }
  emit(opt, table);
  std::cout << "Expected: bit-sliced IPC degrades gracefully with slice "
               "count while simple pipelining collapses roughly linearly.\n";
  return 0;
}
