// Shared plumbing for the bench drivers: CLI parsing (on the shared
// util/cli.hpp parser the campaign tools also use), the standard header
// (Table 2 machine description), and re-exports of the Figure 11/12
// configuration stacks from src/config.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "config/machine_config.hpp"
#include "core/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/workloads.hpp"

namespace bsp::bench {

struct Options {
  u64 instructions = 200'000;  // committed/visited instructions per run
  u64 warmup = 300'000;        // timing-run warm-up (statistics discarded;
                               // stands in for the paper's 1 B fast-forward)
  u64 skip = 10'000;           // trace-study warm-up (trace-driven only)
  unsigned jobs = 0;           // sweep parallelism (0 = hardware threads)
  bool csv = false;
  bool print_config = false;
  bool print_pipelines = false;
  std::vector<std::string> workloads;  // empty = the full suite

  const std::vector<std::string>& workload_list() const {
    return workloads.empty() ? workload_names() : workloads;
  }
};

// Registers the options every driver shares on `parser`. The campaign CLI
// (tools/bsp-sweep.cpp) registers the same core set plus its own; keeping
// the flags and help text here is what keeps the two front ends consistent.
inline void register_common_options(ArgParser& parser, Options& opt) {
  parser.add_value("-n, --instructions", "N",
                   "measured instructions per run (default " +
                       std::to_string(opt.instructions) + ")",
                   &opt.instructions);
  parser.add_value("--warmup", "N",
                   "discarded timing warm-up (default " +
                       std::to_string(opt.warmup) + ")",
                   &opt.warmup);
  parser.add_value("--skip", "N", "trace warm-up instructions", &opt.skip);
  parser.add_value("-j, --jobs", "N",
                   "parallel simulations (default: hardware threads)",
                   &opt.jobs);
  parser.add_value("-w, --workload", "NAME",
                   "restrict to one benchmark (repeatable)", &opt.workloads);
  parser.add_flag("--csv", "machine-readable output", &opt.csv);
}

inline Options parse_options(int argc, char** argv, const char* what) {
  Options opt;
  ArgParser parser(what);
  register_common_options(parser, opt);
  parser.add_flag("--print-config",
                  "dump the Table-2 machine configuration",
                  &opt.print_config);
  parser.add_flag("--print-pipelines",
                  "dump the Figure-10 pipeline diagrams",
                  &opt.print_pipelines);
  parser.parse(argc, argv);
  return opt;
}

inline void print_header(const Options& opt, const char* title) {
  std::cout << "== " << title << " ==\n";
  if (opt.print_config) {
    std::cout << "\nMachine configuration (paper Table 2):\n"
              << base_machine().describe() << "\n";
  }
  if (opt.print_pipelines) {
    std::cout << "Pipelines (paper Figure 10):\n"
              << "  base:       " << pipeline_diagram(base_machine()) << "\n"
              << "  slice-by-2: "
              << pipeline_diagram(simple_pipelined_machine(2)) << "\n"
              << "  slice-by-4: "
              << pipeline_diagram(simple_pipelined_machine(4)) << "\n\n";
  }
}

inline void emit(const Options& opt, const Table& table) {
  if (opt.csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  std::cout << "\n";
}

// Runs one timing simulation, aborting the bench on any co-simulation error.
// (The campaign engine deliberately does NOT use this: bsp-sweep records the
// error and carries on — see src/campaign/scheduler.hpp.)
inline SimStats run_sim(const MachineConfig& cfg, const Program& program,
                        u64 commits, u64 warmup = 0) {
  const SimResult r = simulate(cfg, program, commits, warmup);
  if (!r.ok()) {
    std::cerr << "simulation error: " << r.error << "\n";
    std::exit(1);
  }
  return r.stats;
}

}  // namespace bsp::bench
