// Shared plumbing for the bench drivers: CLI parsing, the standard header
// (Table 2 machine description), and the Figure 11/12 configuration stacks.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "config/machine_config.hpp"
#include "core/simulator.hpp"
#include "util/table.hpp"
#include "workloads/workloads.hpp"

namespace bsp::bench {

struct Options {
  u64 instructions = 200'000;  // committed/visited instructions per run
  u64 warmup = 300'000;        // timing-run warm-up (statistics discarded;
                               // stands in for the paper's 1 B fast-forward)
  u64 skip = 10'000;           // trace-study warm-up (trace-driven only)
  unsigned jobs = 0;           // sweep parallelism (0 = hardware threads)
  bool csv = false;
  bool print_config = false;
  bool print_pipelines = false;
  std::vector<std::string> workloads;  // empty = the full suite

  const std::vector<std::string>& workload_list() const {
    return workloads.empty() ? workload_names() : workloads;
  }
};

inline Options parse_options(int argc, char** argv, const char* what) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << a << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--instructions" || a == "-n") {
      opt.instructions = std::strtoull(value(), nullptr, 0);
    } else if (a == "--warmup") {
      opt.warmup = std::strtoull(value(), nullptr, 0);
    } else if (a == "--skip") {
      opt.skip = std::strtoull(value(), nullptr, 0);
    } else if (a == "--jobs" || a == "-j") {
      opt.jobs = static_cast<unsigned>(std::strtoul(value(), nullptr, 0));
    } else if (a == "--csv") {
      opt.csv = true;
    } else if (a == "--print-config") {
      opt.print_config = true;
    } else if (a == "--print-pipelines") {
      opt.print_pipelines = true;
    } else if (a == "--workload" || a == "-w") {
      opt.workloads.push_back(value());
    } else if (a == "--help" || a == "-h") {
      std::cout << what << "\n\nOptions:\n"
                << "  -n, --instructions N   measured instructions per run "
                   "(default "
                << opt.instructions << ")\n"
                << "      --warmup N         discarded timing warm-up "
                   "(default "
                << opt.warmup << ")\n"
                << "      --skip N           trace warm-up instructions\n"
                << "  -j, --jobs N           parallel simulations (default: "
                   "hardware threads)\n"
                << "  -w, --workload NAME    restrict to one benchmark "
                   "(repeatable)\n"
                << "      --csv              machine-readable output\n"
                << "      --print-config     dump the Table-2 machine "
                   "configuration\n"
                << "      --print-pipelines  dump the Figure-10 pipeline "
                   "diagrams\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option " << a << " (try --help)\n";
      std::exit(2);
    }
  }
  return opt;
}

inline void print_header(const Options& opt, const char* title) {
  std::cout << "== " << title << " ==\n";
  if (opt.print_config) {
    std::cout << "\nMachine configuration (paper Table 2):\n"
              << base_machine().describe() << "\n";
  }
  if (opt.print_pipelines) {
    std::cout << "Pipelines (paper Figure 10):\n"
              << "  base:       " << pipeline_diagram(base_machine()) << "\n"
              << "  slice-by-2: "
              << pipeline_diagram(simple_pipelined_machine(2)) << "\n"
              << "  slice-by-4: "
              << pipeline_diagram(simple_pipelined_machine(4)) << "\n\n";
  }
}

inline void emit(const Options& opt, const Table& table) {
  if (opt.csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  std::cout << "\n";
}

// The cumulative technique stacks of Figures 11/12 for one slice count:
// simple pipelining, then +bypass, +ooo slices, +early branch, +early lsq,
// +partial tag (the paper's order).
struct StackPoint {
  std::string label;
  MachineConfig config;
};

inline std::vector<StackPoint> technique_stack(unsigned slices) {
  std::vector<StackPoint> stack;
  stack.push_back({"simple pipelining", simple_pipelined_machine(slices)});
  TechniqueSet set = kNoTechniques;
  for (const Technique t : technique_order()) {
    set |= static_cast<unsigned>(t);
    stack.push_back({std::string("+") + technique_name(t),
                     bitsliced_machine(slices, set)});
  }
  return stack;
}

// Runs one timing simulation, aborting the bench on any co-simulation error.
inline SimStats run_sim(const MachineConfig& cfg, const Program& program,
                        u64 commits, u64 warmup = 0) {
  const SimResult r = simulate(cfg, program, commits, warmup);
  if (!r.ok()) {
    std::cerr << "simulation error: " << r.error << "\n";
    std::exit(1);
  }
  return r.stats;
}

}  // namespace bsp::bench
