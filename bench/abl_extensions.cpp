// Ablation: the paper's suggested-but-unevaluated extensions (§5.1, §6):
//   * speculative partial-match store forwarding,
//   * narrow-width slice relaxation (significance-compression style).
// Reports IPC on top of the full Figure-11 technique stack, plus the
// mechanism counters (how often each fired, and the speculation miss rate).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  const Options opt = parse_options(
      argc, argv, "ablation: paper-suggested extensions beyond Figure 11");
  print_header(opt, "Ablation: speculative forwarding & narrow-width "
                    "relaxation (slice-by-4)");

  struct Ext {
    const char* label;
    TechniqueSet set;
  };
  const Ext exts[] = {
      {"paper stack", kAllTechniques},
      {"+spec fwd",
       kAllTechniques | static_cast<unsigned>(Technique::SpecForward)},
      {"+narrow width",
       kAllTechniques | static_cast<unsigned>(Technique::NarrowWidth)},
      {"+both", kExtendedTechniques},
  };

  Table table({"benchmark", "paper stack", "+spec fwd", "+narrow width",
               "+both", "spec fwd tried", "spec fwd missed",
               "narrow results"});
  for (const auto& name : opt.workload_list()) {
    const Workload w = build_workload(name);
    std::vector<std::string> row = {name};
    SimStats last{};
    for (const Ext& e : exts) {
      const SimStats s =
          run_sim(bitsliced_machine(4, e.set), w.program, opt.instructions, opt.warmup);
      row.push_back(Table::num(s.ipc(), 3));
      last = s;
    }
    row.push_back(std::to_string(last.spec_forwards));
    row.push_back(std::to_string(last.spec_forward_misses));
    row.push_back(std::to_string(last.narrow_operands));
    table.add_row(std::move(row));
  }
  emit(opt, table);
  std::cout << "The paper predicts speculative partial-match forwarding "
               "confirms with very high accuracy (Figure 2's single-match "
               "category converges to the exact match).\n";
  return 0;
}
