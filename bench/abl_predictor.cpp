// Ablation: direction-predictor sensitivity. Table 2 fixes a 64k gshare;
// this sweep swaps in a small bimodal predictor to see how the bit-slice
// techniques fare when mispredictions are more common — early branch
// resolution's contribution should grow with the misprediction rate, since
// each recovery saves cycles proportional to resolution depth.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  Options opt = parse_options(argc, argv, "ablation: predictor sensitivity");
  if (opt.workloads.empty()) opt.workloads = {"go", "gcc", "li", "parser"};
  print_header(opt, "Ablation: gshare (Table 2) vs small bimodal "
                    "(slice-by-4)");

  const TechniqueSet no_eb =
      kAllTechniques & ~static_cast<unsigned>(Technique::EarlyBranch);

  Table table({"benchmark", "predictor", "branch acc", "full IPC",
               "IPC w/o early branch", "early-branch gain"});
  for (const auto& name : opt.workload_list()) {
    const Workload w = build_workload(name);
    for (const bool bimodal : {false, true}) {
      MachineConfig with = bitsliced_machine(4, kAllTechniques);
      MachineConfig without = bitsliced_machine(4, no_eb);
      with.branch.use_bimodal = bimodal;
      without.branch.use_bimodal = bimodal;
      const SimStats s_with =
          run_sim(with, w.program, opt.instructions, opt.warmup);
      const SimStats s_without =
          run_sim(without, w.program, opt.instructions, opt.warmup);
      table.add_row({name, bimodal ? "bimodal-4k" : "gshare-64k",
                     Table::pct(s_with.branch_accuracy(), 0),
                     Table::num(s_with.ipc(), 3),
                     Table::num(s_without.ipc(), 3),
                     Table::pct(s_with.ipc() / s_without.ipc() - 1.0)});
    }
  }
  emit(opt, table);
  std::cout << "Expected: the weaker predictor lowers accuracy and IPC, and "
               "widens the early-branch-resolution gain.\n";
  return 0;
}
