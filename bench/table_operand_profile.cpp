// Supplementary table: the operand-criticality profile that motivates the
// paper's §2 ("dependent instructions can often begin their execution
// without entire knowledge of their operands") and §6's narrow-width
// remark. For each benchmark: what fraction of dynamic instructions can
// start with only the low slice of their sources, what fraction needs full
// operands, and how often results are narrow.
#include "common.hpp"

#include "trace/studies.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  using namespace bsp;
  using namespace bsp::bench;
  const Options opt = parse_options(
      argc, argv, "supplementary: operand criticality profile");
  print_header(opt, "Operand criticality profile (per dynamic instruction)");

  Table table({"benchmark", "startable with low slice", "needs full operands",
               "results narrow @16b", "results narrow @8b"});
  double s_sum = 0, f_sum = 0, n16_sum = 0, n8_sum = 0;
  unsigned rows = 0;
  for (const auto& name : opt.workload_list()) {
    const Workload w = build_workload(name);
    OperandProfile profile;
    run_trace(w.program, opt.skip, opt.instructions,
              [&](const ExecRecord& rec) {
                profile.observe(rec);
                return true;
              });
    table.add_row({name, Table::pct(profile.startable_with_low_slice()),
                   Table::pct(profile.needs_full_operands()),
                   Table::pct(profile.narrow_results(16)),
                   Table::pct(profile.narrow_results(8))});
    s_sum += profile.startable_with_low_slice();
    f_sum += profile.needs_full_operands();
    n16_sum += profile.narrow_results(16);
    n8_sum += profile.narrow_results(8);
    ++rows;
  }
  table.add_row({"average", Table::pct(s_sum / rows), Table::pct(f_sum / rows),
                 Table::pct(n16_sum / rows), Table::pct(n8_sum / rows)});
  emit(opt, table);
  std::cout << "Reading: the first column is why slice-granular wakeup works "
               "(paper §2); the narrow columns bound the §6 narrow-width "
               "extension's reach (refs [3,6] report similar rates for real "
               "SPECint).\n";
  return 0;
}
