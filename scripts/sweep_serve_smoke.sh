#!/bin/sh
# Distributed-sweep acceptance smoke: one coordinator, three localhost
# workers, one of them SIGKILLed mid-campaign. The coordinator must exit 0,
# the store must hold every task exactly once (re-dispatch may not
# duplicate), and the per-task SimStats must be byte-identical to a
# single-host reference run of the same spec — the distributed plumbing
# has to be invisible to the physics. The --status-endpoint snapshot is
# schema-checked by scripts/validate_status.py while the campaign runs.
#
#   scripts/sweep_serve_smoke.sh [build-dir] [out-dir]
#
# Environment: N (instructions per task, default 20000), W (workload,
# default li; the fig11 campaign narrows to 13 tasks per workload).
set -eu

BUILD=${1:-build}
OUT=${2:-sweep-serve-smoke}
N=${N:-20000}
W=${W:-li}
SWEEP=$BUILD/tools/bsp-sweep
SCRIPTS=$(dirname "$0")
EXPECT_TASKS=13

[ -x "$SWEEP" ] || { echo "no bsp-sweep at $SWEEP" >&2; exit 1; }
mkdir -p "$OUT"
rm -f "$OUT"/ports "$OUT"/*.jsonl "$OUT"/*.out

# Single-host reference: same spec, plain local run.
"$SWEEP" --campaign fig11 -n "$N" --warmup 0 -w "$W" --fresh --no-progress \
  --out "$OUT/reference.jsonl" > "$OUT/reference.out"
grep -q "$EXPECT_TASKS ran ($EXPECT_TASKS ok, 0 failed" "$OUT/reference.out"

# Coordinator: ephemeral ports, advertised through --port-file.
"$SWEEP" --campaign fig11 -n "$N" --warmup 0 -w "$W" --fresh --no-progress \
  --serve 127.0.0.1:0 --status-endpoint 127.0.0.1:0 \
  --port-file "$OUT/ports" \
  --out "$OUT/distributed.jsonl" > "$OUT/serve.out" 2>&1 &
COORD=$!

i=0
while [ ! -s "$OUT/ports" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "coordinator never wrote $OUT/ports" >&2; exit 1; }
  kill -0 "$COORD" 2>/dev/null || { cat "$OUT/serve.out" >&2; exit 1; }
  sleep 0.1
done
PORT=$(sed -n 's/^port=//p' "$OUT/ports")
STATUS_PORT=$(sed -n 's/^status_port=//p' "$OUT/ports")
echo "coordinator on :$PORT (status :$STATUS_PORT)"

# Validate the status snapshot before any worker connects: the campaign
# cannot finish (and close the endpoint) while the fleet is empty, so this
# poll is race-free. 13 tasks pending, zero workers — still schema-valid.
python3 "$SCRIPTS/validate_status.py" "http://127.0.0.1:$STATUS_PORT" \
  --expect-campaign fig11 --expect-total "$EXPECT_TASKS"

"$SWEEP" --connect "127.0.0.1:$PORT" -j 2 > "$OUT/worker1.out" 2>&1 &
W1=$!
"$SWEEP" --connect "127.0.0.1:$PORT" -j 2 > "$OUT/worker2.out" 2>&1 &
W2=$!
"$SWEEP" --connect "127.0.0.1:$PORT" -j 2 > "$OUT/worker3.out" 2>&1 &
W3=$!

# SIGKILL worker 2 while the campaign is (most likely) still in flight.
# Whatever tasks it held must be re-dispatched; the guarantees below hold
# regardless of kill timing.
sleep 0.3
kill -KILL "$W2" 2>/dev/null || true
echo "worker 2 (pid $W2) SIGKILLed"

rc=0
wait "$COORD" || rc=$?
[ "$rc" -eq 0 ] || { echo "coordinator exited $rc" >&2
                     cat "$OUT/serve.out" >&2; exit 1; }
wait "$W1" || { echo "worker 1 failed" >&2; cat "$OUT/worker1.out" >&2
                exit 1; }
wait "$W2" 2>/dev/null || true  # the one we shot
wait "$W3" || { echo "worker 3 failed" >&2; cat "$OUT/worker3.out" >&2
                exit 1; }
grep -q "$EXPECT_TASKS ran ($EXPECT_TASKS ok, 0 failed" "$OUT/serve.out" || {
  echo "coordinator summary disagrees:" >&2; cat "$OUT/serve.out" >&2; exit 1
}

# Exactly-once in the store, and byte-identical stats vs the reference.
python3 - "$OUT" "$EXPECT_TASKS" <<'EOF'
import json, sys
out, expect = sys.argv[1], int(sys.argv[2])

def stats(path):
    recs = {}
    for line in open(path):
        rec = json.loads(line)
        assert rec["task"] not in recs, f"duplicate record: {rec['task']}"
        assert rec["status"] == "ok", f"{rec['task']}: {rec['status']}"
        recs[rec["task"]] = rec["stats"]
    return recs

ref = stats(f"{out}/reference.jsonl")
dist = stats(f"{out}/distributed.jsonl")
assert len(ref) == expect, f"reference has {len(ref)} tasks"
assert ref.keys() == dist.keys(), \
    f"task sets differ: {sorted(ref.keys() ^ dist.keys())}"
for tid in ref:
    assert ref[tid] == dist[tid], f"stats diverged for {tid}"
print(f"distributed smoke: {len(ref)} tasks exactly once, "
      "stats identical to single-host reference")
EOF
