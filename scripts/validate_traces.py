#!/usr/bin/env python3
"""Validate the simulator's observability outputs (stdlib only).

Checks a Chrome trace-event JSON file, a Konata pipeline log, and an
interval-stats JSONL file for structural validity — the same invariants the
C++ unit tests pin, but runnable against any file a user (or the CI trace
smoke step) produced:

  validate_traces.py [--perfetto out.json] [--konata out.kanata]
                     [--interval out.jsonl] [--commit-width W]

With --commit-width, an interval file from a CPI-accounting run (nonzero
cpi_* deltas) additionally gets the offline identity check: every sample's
cpi_* deltas must sum to exactly W * its cycles delta.

Exit status 0 when every given file validates; 1 with a message otherwise.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"validate_traces: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_perfetto(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    config = doc.get("otherData", {}).get("config")
    if not isinstance(config, str) or not config:
        fail(f"{path}: missing otherData.config")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    n_complete = n_instant = 0
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            fail(f"{where}: unknown phase {ph!r}")
        for key in ("name", "pid", "tid"):
            if key not in ev:
                fail(f"{where}: missing {key!r}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where}: bad ts {ts!r}")
        if ph == "X":
            n_complete += 1
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: bad dur {dur!r}")
        else:
            n_instant += 1
            if ev.get("s") != "t":
                fail(f"{where}: instant without thread scope")
        # Stall-cause annotations (squash / idle-skip events) are optional
        # but, when present, must name a CPI-stack leaf.
        cause = ev.get("args", {}).get("cause")
        if cause is not None and not (
            isinstance(cause, str) and cause.startswith("cpi_")
        ):
            fail(f"{where}: bad stall cause {cause!r}")
    print(f"{path}: OK ({n_complete} complete, {n_instant} instant events)")


def validate_konata(path):
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines or lines[0] != "Kanata\t0004":
        fail(f"{path}: missing 'Kanata\\t0004' header")
    live, retired = set(), set()
    for n, line in enumerate(lines[1:], start=2):
        where = f"{path}:{n}"
        parts = line.split("\t")
        cmd = parts[0]
        if cmd in ("C=", "C"):
            if int(parts[1]) < 0:
                fail(f"{where}: negative cycle step")
        elif cmd == "I":
            fid = int(parts[1])
            if fid in live:
                fail(f"{where}: duplicate I {fid}")
            live.add(fid)
        elif cmd in ("L", "S", "E"):
            if int(parts[1]) not in live:
                fail(f"{where}: {cmd} for unknown id {parts[1]}")
        elif cmd == "R":
            fid, rtype = int(parts[1]), int(parts[3])
            if fid not in live:
                fail(f"{where}: R for unknown id {fid}")
            if fid in retired:
                fail(f"{where}: double retire of {fid}")
            if rtype not in (0, 1):
                fail(f"{where}: bad retire type {rtype}")
            retired.add(fid)
        else:
            fail(f"{where}: unknown record {cmd!r}")
    if live != retired:
        fail(f"{path}: {len(live - retired)} instructions never retired")
    print(f"{path}: OK ({len(live)} instructions)")


def validate_interval(path, commit_width=None):
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path}: empty")
    header = json.loads(lines[0])
    if header.get("type") != "header" or header.get("version") != 1:
        fail(f"{path}: bad header line")
    columns = [c["name"] for c in header.get("columns", [])]
    if not columns or len(set(columns)) != len(columns):
        fail(f"{path}: missing or duplicate columns")
    derived = [d["name"] for d in header.get("derived", [])]
    registered = set(columns)
    cpi_leaves = [c for c in columns if c.startswith("cpi_")]
    cpi_total = 0
    samples = 0
    rows = []
    for n, line in enumerate(lines[1:], start=2):
        row = json.loads(line)
        where = f"{path}:{n}"
        if row.get("type") != "sample":
            fail(f"{where}: expected a sample row")
        delta = row.get("delta")
        if not isinstance(delta, dict):
            fail(f"{where}: missing delta object")
        extra = set(delta) - registered
        if extra:
            fail(f"{where}: unregistered counters {sorted(extra)}")
        missing = registered - set(delta)
        if missing:
            fail(f"{where}: missing counters {sorted(missing)}")
        for d in derived:
            if not isinstance(row.get(d), (int, float)):
                fail(f"{where}: missing derived metric {d!r}")
        cpi_total += sum(delta[k] for k in cpi_leaves)
        rows.append((where, delta))
        samples += 1
    # Offline CPI identity: in an accounting-enabled run (any nonzero cpi_*
    # delta), every sample's leaves must sum to exactly W * cycles — the
    # sampler snapshots between commit and charge, so this holds per row,
    # not just in aggregate.
    checked = ""
    if commit_width is not None and cpi_leaves and cpi_total > 0:
        for where, delta in rows:
            slots = sum(delta[k] for k in cpi_leaves)
            expect = commit_width * delta["cycles"]
            if slots != expect:
                fail(
                    f"{where}: cpi identity violated "
                    f"({slots} slots != {commit_width} * {delta['cycles']})"
                )
        checked = f", cpi identity ok x{samples}"
    print(
        f"{path}: OK ({samples} samples, {len(columns)} counters{checked})"
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--perfetto", help="Chrome trace-event JSON file")
    ap.add_argument("--konata", help="Konata pipeline log")
    ap.add_argument("--interval", help="interval-stats JSONL file")
    ap.add_argument(
        "--commit-width",
        type=int,
        help="machine commit width; enables the per-sample CPI identity "
        "check on --interval files from --cpi-stack runs",
    )
    args = ap.parse_args()
    if not (args.perfetto or args.konata or args.interval):
        ap.error("nothing to validate (pass --perfetto/--konata/--interval)")
    if args.perfetto:
        validate_perfetto(args.perfetto)
    if args.konata:
        validate_konata(args.konata)
    if args.interval:
        validate_interval(args.interval, args.commit_width)


if __name__ == "__main__":
    main()
