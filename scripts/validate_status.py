#!/usr/bin/env python3
"""Schema check for the bsp-sweep coordinator's --status-endpoint JSON.

Fetches one snapshot from the given endpoint (an http://host:port URL or a
bare host:port) and validates the documented schema (ARCHITECTURE.md §14):
every field present, correctly typed, and internally consistent
(done = ok + failed + crashed, remaining bounded by total, per-worker
inflight summing to the top-level gauge). Exits non-zero — with the
offending snapshot on stderr — on any violation, so CI can poll it while a
distributed smoke runs.

    python3 scripts/validate_status.py http://127.0.0.1:9001 \
        [--expect-campaign fig11] [--expect-total 13] [--retries 50]
"""

import argparse
import json
import sys
import time
import urllib.request

# field -> (type, required); bool is deliberately absent: the endpoint is
# all counters, strings and arrays.
SCHEMA = {
    "campaign": str,
    "proto": int,
    "total": int,
    "skipped": int,
    "done": int,
    "ok": int,
    "failed": int,
    "crashed": int,
    "retried": int,
    "queued": int,
    "inflight": int,
    "elapsed_sec": float,
    "rate_tasks_per_sec": float,
    "eta_sec": float,
    "commits_per_host_second": float,
    "max_rss_kb": int,
    "workers": list,
}

WORKER_SCHEMA = {
    "host": str,
    "slots": int,
    "inflight": int,
    "idle_sec": float,
}


def fail(msg, snapshot=None):
    print(f"validate_status: {msg}", file=sys.stderr)
    if snapshot is not None:
        print(json.dumps(snapshot, indent=2), file=sys.stderr)
    sys.exit(1)


def check_fields(obj, schema, where):
    for key, want in schema.items():
        if key not in obj:
            fail(f"{where}: missing field {key!r}", obj)
        got = obj[key]
        # ints serialise without a decimal point but are valid doubles
        if want is float and isinstance(got, int):
            continue
        if not isinstance(got, want):
            fail(f"{where}: field {key!r} is {type(got).__name__}, "
                 f"want {want.__name__}", obj)
    extra = set(obj) - set(schema)
    if extra:
        fail(f"{where}: undocumented fields {sorted(extra)}", obj)


def fetch(url, retries, delay):
    last = None
    for _ in range(retries):
        try:
            with urllib.request.urlopen(url, timeout=5) as resp:
                if resp.status != 200:
                    last = f"HTTP {resp.status}"
                    continue
                ctype = resp.headers.get("Content-Type", "")
                if ctype != "application/json":
                    fail(f"Content-Type is {ctype!r}, want application/json")
                return json.load(resp)
        except Exception as e:  # endpoint may not be up yet
            last = str(e)
        time.sleep(delay)
    fail(f"no snapshot from {url} after {retries} tries: {last}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("endpoint", help="http://host:port or host:port")
    ap.add_argument("--expect-campaign")
    ap.add_argument("--expect-total", type=int)
    ap.add_argument("--retries", type=int, default=50)
    ap.add_argument("--delay", type=float, default=0.1)
    args = ap.parse_args()

    url = args.endpoint
    if not url.startswith("http"):
        url = "http://" + url
    snap = fetch(url, args.retries, args.delay)

    check_fields(snap, SCHEMA, "snapshot")
    for i, w in enumerate(snap["workers"]):
        check_fields(w, WORKER_SCHEMA, f"workers[{i}]")

    # Internal consistency.
    if snap["done"] != snap["ok"] + snap["failed"] + snap["crashed"]:
        fail("done != ok + failed + crashed", snap)
    if snap["skipped"] + snap["done"] > snap["total"]:
        fail("skipped + done exceeds total", snap)
    if snap["queued"] + snap["inflight"] > snap["total"]:
        fail("queued + inflight exceeds total", snap)
    if snap["inflight"] != sum(w["inflight"] for w in snap["workers"]):
        fail("inflight gauge disagrees with the per-worker sum", snap)
    for key in ("elapsed_sec", "rate_tasks_per_sec",
                "commits_per_host_second"):
        if snap[key] < 0:
            fail(f"{key} is negative", snap)

    if args.expect_campaign and snap["campaign"] != args.expect_campaign:
        fail(f"campaign is {snap['campaign']!r}, "
             f"want {args.expect_campaign!r}", snap)
    if args.expect_total is not None and snap["total"] != args.expect_total:
        fail(f"total is {snap['total']}, want {args.expect_total}", snap)

    print(f"status ok: {snap['done']}/{snap['total']} done, "
          f"{len(snap['workers'])} worker(s), queued={snap['queued']}, "
          f"inflight={snap['inflight']}")


if __name__ == "__main__":
    main()
