#!/bin/sh
# Simulator-throughput baseline: builds Release (-O2) and runs the
# engineering microbenchmarks, recording machine-readable results in
# BENCH_simcore.json at the repo root so throughput regressions are
# diffable across commits.
#
#   scripts/bench_perf.sh [build-dir] [output-json]
#
# The tracked benchmarks are the whole-program simulator throughput runs
# (BM_SimulatorThroughput: gzip, 20k commits, base/slice-2/slice-4 machines;
# BM_TechniqueStackThroughput: the slice-4 cumulative technique stacks) plus
# the emulator step rate. Wall-clock numbers are host- and load-sensitive:
# compare runs from the same machine, and prefer the best of a few repeats.
set -eu

BUILD="${1:-build-perf}"
OUT="${2:-BENCH_simcore.json}"

cmake -S . -B "$BUILD" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" --target bench_microarch -j "$(nproc)" > /dev/null

"$BUILD/bench/bench_microarch" \
  --benchmark_filter='SimulatorThroughput|TechniqueStackThroughput|EmulatorStep' \
  --benchmark_format=json \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

echo "wrote $OUT"
