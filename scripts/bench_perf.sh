#!/bin/sh
# Simulator-throughput baseline: builds Release (-O2) and runs the
# engineering microbenchmarks, recording machine-readable results in
# BENCH_simcore.json at the repo root so throughput regressions are
# diffable across commits.
#
#   scripts/bench_perf.sh [build-dir] [output-json] [--allow-debug-library]
#   scripts/bench_perf.sh --check [build-dir] [baseline-json]
#   scripts/bench_perf.sh --paired OLD_BIN NEW_BIN [output-json]
#
# --check is the regression gate: instead of recording a new baseline it
# re-measures the BM_SimulatorThroughput configs and the scheduler
# microbenches (BM_WakeupSelect / BM_DispatchOnly / BM_SelectSort /
# BM_CommitOnly) and compares them against the committed baseline JSON,
# exiting non-zero if any tracked benchmark lost more than 15% of its
# items_per_second. The same library_build_type gate applies (Release
# builds only unless --allow-debug-library): a debug-library measurement
# would fail the threshold for reasons that have nothing to do with the
# code under test.
#
# --paired is the honest A/B protocol for before/after claims: it takes
# two already-built bench_microarch binaries (old first) and interleaves
# BM_SimulatorThroughput/0 runs in one window so host drift (thermal,
# cron, page cache) lands on both sides equally. Within-pair run order
# alternates (old/new, then new/old, ...) because the first run of a
# pair systematically sees a different frequency/cache state than the
# second; each measurement also runs >= 2s (--benchmark_min_time) so
# per-run jitter amortizes. Per-pair ratios and their median are merged
# under "paired" in the output JSON (default BENCH_simcore.json).
# PAIRED_REPS overrides the pair count (default 7). The new side runs
# under BSP_BENCH_COSIM (default spot:64; old binaries ignore the
# variable) so the A/B states the speedup under the co-simulation
# cadence it is claimed for; set PAIRED_COSIM=full for a
# cadence-neutral comparison.
#
# Alongside the microbenchmark baseline the script records
# BENCH_sampling.json: monolithic vs sampled-simulation (K=8) wall clock
# and IPC-estimate error on long bzip/mcf runs. Sampled wall clock is
# parallelism-bound — on an H-core host the K intervals overlap at most
# H-wide — so the file records both the measured wall seconds *and* the
# critical path (prewarm + slowest interval, the wall clock an >= K-core
# host approaches), plus host_cores so the context of the measurement is
# in the artifact, mirroring the honest library_build_type tagging above.
#
# The tracked benchmarks are the whole-program simulator throughput runs
# (BM_SimulatorThroughput: gzip, 20k commits, base/slice-2/slice-4 machines;
# BM_TechniqueStackThroughput: the slice-4 cumulative technique stacks) plus
# the emulator step rate and the fast-forward interpreter rate
# (BM_EmulatorFastRunThroughput — the run_fast path campaigns use to reach
# checkpoint regions; the acceptance floor is 3x the step rate). The script
# also times a small fast-forwarding sweep twice against one checkpoint
# cache directory and records the cold/warm wall-clock seconds under
# "ckpt_cache_sweep" in the output JSON. Wall-clock numbers are host- and
# load-sensitive: compare runs from the same machine, and prefer the best
# of a few repeats.
#
# A baseline is only recorded when the benchmark context reports
# "library_build_type": "release" — a debug-built Google Benchmark library
# (its measurement loop carries assertion overhead) silently skews the
# numbers, which is how a debug-library baseline once got checked in. On
# hosts whose only libbenchmark is a debug build (some distro packages),
# pass --allow-debug-library to record anyway; the context keeps the
# honest "debug" tag so the provenance stays visible in the diff.
set -eu

if [ "${1:-}" = "--paired" ]; then
  OLD_BIN="${2:?--paired needs OLD_BIN NEW_BIN}"
  NEW_BIN="${3:?--paired needs OLD_BIN NEW_BIN}"
  OUT="${4:-BENCH_simcore.json}"
  REPS="${PAIRED_REPS:-7}"
  COSIM="${PAIRED_COSIM:-spot:64}"
  PFILTER='BM_SimulatorThroughput/0$'
  TMPD=$(mktemp -d)
  trap 'rm -rf "$TMPD"' EXIT
  run_old() {
    "$OLD_BIN" --benchmark_filter="$PFILTER" --benchmark_min_time=2 \
      --benchmark_format=json \
      --benchmark_out="$TMPD/old.$1.json" --benchmark_out_format=json \
      > /dev/null
  }
  run_new() {
    BSP_BENCH_COSIM="$COSIM" \
      "$NEW_BIN" --benchmark_filter="$PFILTER" --benchmark_min_time=2 \
      --benchmark_format=json \
      --benchmark_out="$TMPD/new.$1.json" --benchmark_out_format=json \
      > /dev/null
  }
  i=1
  while [ "$i" -le "$REPS" ]; do
    if [ $((i % 2)) -eq 1 ]; then
      run_old "$i"; run_new "$i"
    else
      run_new "$i"; run_old "$i"
    fi
    echo "pair $i/$REPS done" >&2
    i=$((i + 1))
  done
  python3 - "$TMPD" "$REPS" "$OUT" "$COSIM" <<'EOF'
import json, os, statistics, sys
tmpd, reps, out, cosim = sys.argv[1], int(sys.argv[2]), sys.argv[3], sys.argv[4]
def rate(path):
    doc = json.load(open(path))
    (b,) = [b for b in doc["benchmarks"] if "items_per_second" in b]
    return b["name"], b["items_per_second"]
name = None
old, new = [], []
for i in range(1, reps + 1):
    name, r = rate(f"{tmpd}/old.{i}.json"); old.append(r)
    _, r = rate(f"{tmpd}/new.{i}.json"); new.append(r)
ratios = [n / o for n, o in zip(new, old)]
for i, (o, n, r) in enumerate(zip(old, new, ratios), 1):
    print(f"pair {i}: old {o/1e6:.3f}M/s  new {n/1e6:.3f}M/s  ({r:.3f}x)")
median = statistics.median(ratios)
print(f"{name}: median speedup {median:.3f}x over {reps} interleaved pairs")
data = json.load(open(out)) if os.path.exists(out) else {}
data["paired"] = {
    "benchmark": name,
    "new_cosim": cosim,
    "pairs": reps,
    "old_items_per_second": old,
    "new_items_per_second": new,
    "ratios": ratios,
    "median_speedup": median,
}
json.dump(data, open(out, "w"), indent=1)
print(f"merged paired result into {out}")
EOF
  exit 0
fi

BUILD="build-perf"
OUT="BENCH_simcore.json"
ALLOW_DEBUG=0
CHECK=0
i=0
for arg in "$@"; do
  case "$arg" in
    --allow-debug-library) ALLOW_DEBUG=1 ;;
    --check) CHECK=1 ;;
    *)
      i=$((i + 1))
      if [ "$i" -eq 1 ]; then BUILD="$arg"; else OUT="$arg"; fi
      ;;
  esac
done

cmake -S . -B "$BUILD" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" --target bench_microarch -j "$(nproc)" > /dev/null

TMP="$OUT.tmp"
trap 'rm -f "$TMP"' EXIT

FILTER='SimulatorThroughput|TechniqueStackThroughput|EmulatorStep|EmulatorFastRun|WakeupSelect|DispatchOnly|SelectSort|CommitOnly'
if [ "$CHECK" -eq 1 ]; then
  # The gate re-measures only the benchmarks it compares.
  FILTER='SimulatorThroughput/|WakeupSelect|DispatchOnly|SelectSort|CommitOnly'
fi

"$BUILD/bench/bench_microarch" \
  --benchmark_filter="$FILTER" \
  --benchmark_format=json \
  --benchmark_out="$TMP" \
  --benchmark_out_format=json

LIB_BUILD=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['context'].get('library_build_type','unknown'))" "$TMP")
if [ "$LIB_BUILD" != "release" ] && [ "$ALLOW_DEBUG" -ne 1 ]; then
  echo "error: benchmark library_build_type is '$LIB_BUILD', not 'release';" >&2
  echo "       refusing to record a baseline measured through a debug-built" >&2
  echo "       Google Benchmark library (rerun with --allow-debug-library" >&2
  echo "       to record anyway, e.g. where the distro package is debug)." >&2
  exit 1
fi
if [ "$LIB_BUILD" != "release" ]; then
  echo "warning: recording baseline against a '$LIB_BUILD' benchmark library" >&2
fi

if [ "$CHECK" -eq 1 ]; then
  if [ ! -f "$OUT" ]; then
    echo "error: --check needs a committed baseline at $OUT" >&2
    exit 1
  fi
  python3 - "$TMP" "$OUT" <<'EOF'
import json, sys
fresh_doc, base_doc = (json.load(open(p)) for p in sys.argv[1:3])
rate = lambda doc: {b["name"]: b["items_per_second"]
                    for b in doc["benchmarks"] if "items_per_second" in b}
fresh, base = rate(fresh_doc), rate(base_doc)
tracked = sorted(set(fresh) & set(base))
if not tracked:
    sys.exit("error: no tracked benchmarks shared with the baseline "
             "(regenerate it with scripts/bench_perf.sh)")
failed = False
for name in tracked:
    ratio = fresh[name] / base[name]
    tag = "ok" if ratio >= 0.85 else "REGRESSION"
    if ratio < 0.85:
        failed = True
    print(f"{tag:>10}  {name}: {fresh[name]/1e6:.3f}M/s "
          f"vs baseline {base[name]/1e6:.3f}M/s ({ratio:.2f}x)")
if failed:
    sys.exit("error: >15% throughput regression against the committed "
             "baseline")
EOF
  echo "throughput check passed (within 15% of $OUT)"
  exit 0
fi

# Cold/warm checkpoint-cache sweep: the same small fast-forwarding
# campaign twice against one cache directory. Cold pays the fast-forwards
# and materialises the cache; warm restores everything from it, so
# warm_sec < cold_sec is the end-to-end win the cache exists for.
cmake --build "$BUILD" --target bsp-sweep -j "$(nproc)" > /dev/null
CKPT_DIR=$(mktemp -d)
SWEEP_OUT=$(mktemp -u)
trap 'rm -f "$TMP"; rm -rf "$CKPT_DIR" "$SWEEP_OUT".*' EXIT
sweep_secs() {
  start=$(date +%s.%N)
  "$BUILD/tools/bsp-sweep" --campaign fig11 -w gzip -n 5000 --warmup 1000 \
    --fast-forward 2000000 --ckpt-cache "$CKPT_DIR" \
    --out "$1" --fresh --no-progress > /dev/null
  end=$(date +%s.%N)
  echo "$start $end" | awk '{ printf "%.3f", $2 - $1 }'
}
COLD_SEC=$(sweep_secs "$SWEEP_OUT.cold.jsonl")
WARM_SEC=$(sweep_secs "$SWEEP_OUT.warm.jsonl")
python3 - "$TMP" "$COLD_SEC" "$WARM_SEC" <<'EOF'
import json, sys
path, cold, warm = sys.argv[1], float(sys.argv[2]), float(sys.argv[3])
data = json.load(open(path))
data["ckpt_cache_sweep"] = {
    "campaign": "fig11 -w gzip -n 5000 --warmup 1000 --fast-forward 2000000",
    "cold_sec": cold,
    "warm_sec": warm,
}
# CPI-stack accounting overhead: enabled vs plain base-machine throughput
# from this same benchmark process (acceptance < 10%; the disabled path is
# pinned bit-identical by the golden tests, so only the enabled delta
# costs anything).
rate = {b["name"]: b["items_per_second"]
        for b in data["benchmarks"] if "items_per_second" in b}
base = rate.get("BM_SimulatorThroughput/0")
cpi = rate.get("BM_SimulatorThroughputCpiStack")
if base and cpi:
    data["cpi_stack_overhead"] = {
        "base_items_per_second": base,
        "cpi_stack_items_per_second": cpi,
        "overhead_frac": 1.0 - cpi / base,
    }
json.dump(data, open(path, "w"), indent=1)
EOF

mv "$TMP" "$OUT"
echo "wrote $OUT (ckpt cache sweep: cold ${COLD_SEC}s, warm ${WARM_SEC}s)"

# Sampled-simulation baseline: monolithic vs K=8 sampled on long runs.
# Deterministic modulo host timing; IPC figures are exact re-run to re-run.
cmake --build "$BUILD" --target bsp-sim -j "$(nproc)" > /dev/null
SAMPLE_OUT="BENCH_sampling.json"
SAMPLE_N=4000000
SAMPLE_WARM=200000
SAMPLE_K=8
SAMPLE_KW=100000
SAMPLE_DIR=$(mktemp -d)
SAMPLE_TMP=$(mktemp -d)
trap 'rm -f "$TMP"; rm -rf "$CKPT_DIR" "$SWEEP_OUT".* "$SAMPLE_DIR" "$SAMPLE_TMP"' EXIT
for w in bzip mcf li parser; do
  start=$(date +%s.%N)
  "$BUILD/tools/bsp-sim" "$w" -n "$SAMPLE_N" --warmup "$SAMPLE_WARM" \
    > "$SAMPLE_TMP/$w.mono.txt"
  end=$(date +%s.%N)
  echo "$start $end" | awk '{ printf "%.3f", $2 - $1 }' \
    > "$SAMPLE_TMP/$w.mono.sec"
  start=$(date +%s.%N)
  "$BUILD/tools/bsp-sim" "$w" -n "$SAMPLE_N" --warmup "$SAMPLE_WARM" \
    --sample-intervals "$SAMPLE_K" --sample-warmup "$SAMPLE_KW" \
    --ckpt-cache "$SAMPLE_DIR" \
    --sample-out "$SAMPLE_TMP/$w.intervals.jsonl" \
    > "$SAMPLE_TMP/$w.sampled.txt"
  end=$(date +%s.%N)
  echo "$start $end" | awk '{ printf "%.3f", $2 - $1 }' \
    > "$SAMPLE_TMP/$w.sampled.sec"
done
python3 - "$SAMPLE_TMP" "$SAMPLE_OUT" "$LIB_BUILD" <<EOF
import json, os, re, sys
tmp, out, lib_build = sys.argv[1], sys.argv[2], sys.argv[3]
result = {
    "context": {
        "config": "-n $SAMPLE_N --warmup $SAMPLE_WARM "
                  "--sample-intervals $SAMPLE_K --sample-warmup $SAMPLE_KW",
        "host_cores": os.cpu_count(),
        # The sampled timing never touches the benchmark library, but the
        # artifact carries the same provenance tag as BENCH_simcore.json
        # so a debug-library host is visible across the whole baseline.
        "library_build_type": lib_build,
    },
    "workloads": {},
}
for w in ("bzip", "mcf", "li", "parser"):
    mono = open(f"{tmp}/{w}.mono.txt").read()
    sampled = open(f"{tmp}/{w}.sampled.txt").read()
    ipc = float(re.search(r"^IPC:\s+([0-9.]+)", mono, re.M).group(1))
    est = re.search(r"IPC estimate: ([0-9.]+) \+/- ([0-9.]+)", sampled)
    wall = re.search(r"wall:\s+([0-9.]+)s total \(([0-9.]+)s prewarm", sampled)
    hosts = [json.loads(l)["host_sec"]
             for l in open(f"{tmp}/{w}.intervals.jsonl") if l.strip()]
    prewarm = float(wall.group(2))
    critical = prewarm + max(hosts)
    mono_sec = float(open(f"{tmp}/{w}.mono.sec").read())
    result["workloads"][w] = {
        "mono_sec": mono_sec,
        "mono_ipc": ipc,
        "sampled_sec": float(open(f"{tmp}/{w}.sampled.sec").read()),
        "sampled_ipc_mean": float(est.group(1)),
        "sampled_ipc_ci95": float(est.group(2)),
        "estimate_abs_error": abs(float(est.group(1)) - ipc),
        "prewarm_sec": prewarm,
        "interval_host_sec": hosts,
        # Wall clock a host with >= K cores approaches: the functional
        # prewarm (serial) plus the slowest interval worker.
        "critical_path_sec": critical,
        "critical_path_speedup": mono_sec / critical,
    }
json.dump(result, open(out, "w"), indent=1)
EOF
echo "wrote $SAMPLE_OUT (sampled vs monolithic, K=$SAMPLE_K)"
