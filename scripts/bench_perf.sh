#!/bin/sh
# Simulator-throughput baseline: builds Release (-O2) and runs the
# engineering microbenchmarks, recording machine-readable results in
# BENCH_simcore.json at the repo root so throughput regressions are
# diffable across commits.
#
#   scripts/bench_perf.sh [build-dir] [output-json] [--allow-debug-library]
#
# The tracked benchmarks are the whole-program simulator throughput runs
# (BM_SimulatorThroughput: gzip, 20k commits, base/slice-2/slice-4 machines;
# BM_TechniqueStackThroughput: the slice-4 cumulative technique stacks) plus
# the emulator step rate and the fast-forward interpreter rate
# (BM_EmulatorFastRunThroughput — the run_fast path campaigns use to reach
# checkpoint regions; the acceptance floor is 3x the step rate). The script
# also times a small fast-forwarding sweep twice against one checkpoint
# cache directory and records the cold/warm wall-clock seconds under
# "ckpt_cache_sweep" in the output JSON. Wall-clock numbers are host- and
# load-sensitive: compare runs from the same machine, and prefer the best
# of a few repeats.
#
# A baseline is only recorded when the benchmark context reports
# "library_build_type": "release" — a debug-built Google Benchmark library
# (its measurement loop carries assertion overhead) silently skews the
# numbers, which is how a debug-library baseline once got checked in. On
# hosts whose only libbenchmark is a debug build (some distro packages),
# pass --allow-debug-library to record anyway; the context keeps the
# honest "debug" tag so the provenance stays visible in the diff.
set -eu

BUILD="build-perf"
OUT="BENCH_simcore.json"
ALLOW_DEBUG=0
i=0
for arg in "$@"; do
  case "$arg" in
    --allow-debug-library) ALLOW_DEBUG=1 ;;
    *)
      i=$((i + 1))
      if [ "$i" -eq 1 ]; then BUILD="$arg"; else OUT="$arg"; fi
      ;;
  esac
done

cmake -S . -B "$BUILD" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" --target bench_microarch -j "$(nproc)" > /dev/null

TMP="$OUT.tmp"
trap 'rm -f "$TMP"' EXIT

"$BUILD/bench/bench_microarch" \
  --benchmark_filter='SimulatorThroughput|TechniqueStackThroughput|EmulatorStep|EmulatorFastRun' \
  --benchmark_format=json \
  --benchmark_out="$TMP" \
  --benchmark_out_format=json

LIB_BUILD=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['context'].get('library_build_type','unknown'))" "$TMP")
if [ "$LIB_BUILD" != "release" ] && [ "$ALLOW_DEBUG" -ne 1 ]; then
  echo "error: benchmark library_build_type is '$LIB_BUILD', not 'release';" >&2
  echo "       refusing to record a baseline measured through a debug-built" >&2
  echo "       Google Benchmark library (rerun with --allow-debug-library" >&2
  echo "       to record anyway, e.g. where the distro package is debug)." >&2
  exit 1
fi
if [ "$LIB_BUILD" != "release" ]; then
  echo "warning: recording baseline against a '$LIB_BUILD' benchmark library" >&2
fi

# Cold/warm checkpoint-cache sweep: the same small fast-forwarding
# campaign twice against one cache directory. Cold pays the fast-forwards
# and materialises the cache; warm restores everything from it, so
# warm_sec < cold_sec is the end-to-end win the cache exists for.
cmake --build "$BUILD" --target bsp-sweep -j "$(nproc)" > /dev/null
CKPT_DIR=$(mktemp -d)
SWEEP_OUT=$(mktemp -u)
trap 'rm -f "$TMP"; rm -rf "$CKPT_DIR" "$SWEEP_OUT".*' EXIT
sweep_secs() {
  start=$(date +%s.%N)
  "$BUILD/tools/bsp-sweep" --campaign fig11 -w gzip -n 5000 --warmup 1000 \
    --fast-forward 2000000 --ckpt-cache "$CKPT_DIR" \
    --out "$1" --fresh --no-progress > /dev/null
  end=$(date +%s.%N)
  echo "$start $end" | awk '{ printf "%.3f", $2 - $1 }'
}
COLD_SEC=$(sweep_secs "$SWEEP_OUT.cold.jsonl")
WARM_SEC=$(sweep_secs "$SWEEP_OUT.warm.jsonl")
python3 - "$TMP" "$COLD_SEC" "$WARM_SEC" <<'EOF'
import json, sys
path, cold, warm = sys.argv[1], float(sys.argv[2]), float(sys.argv[3])
data = json.load(open(path))
data["ckpt_cache_sweep"] = {
    "campaign": "fig11 -w gzip -n 5000 --warmup 1000 --fast-forward 2000000",
    "cold_sec": cold,
    "warm_sec": warm,
}
json.dump(data, open(path, "w"), indent=1)
EOF

mv "$TMP" "$OUT"
echo "wrote $OUT (ckpt cache sweep: cold ${COLD_SEC}s, warm ${WARM_SEC}s)"
