#!/bin/sh
# Simulator-throughput baseline: builds Release (-O2) and runs the
# engineering microbenchmarks, recording machine-readable results in
# BENCH_simcore.json at the repo root so throughput regressions are
# diffable across commits.
#
#   scripts/bench_perf.sh [build-dir] [output-json] [--allow-debug-library]
#
# The tracked benchmarks are the whole-program simulator throughput runs
# (BM_SimulatorThroughput: gzip, 20k commits, base/slice-2/slice-4 machines;
# BM_TechniqueStackThroughput: the slice-4 cumulative technique stacks) plus
# the emulator step rate. Wall-clock numbers are host- and load-sensitive:
# compare runs from the same machine, and prefer the best of a few repeats.
#
# A baseline is only recorded when the benchmark context reports
# "library_build_type": "release" — a debug-built Google Benchmark library
# (its measurement loop carries assertion overhead) silently skews the
# numbers, which is how a debug-library baseline once got checked in. On
# hosts whose only libbenchmark is a debug build (some distro packages),
# pass --allow-debug-library to record anyway; the context keeps the
# honest "debug" tag so the provenance stays visible in the diff.
set -eu

BUILD="build-perf"
OUT="BENCH_simcore.json"
ALLOW_DEBUG=0
i=0
for arg in "$@"; do
  case "$arg" in
    --allow-debug-library) ALLOW_DEBUG=1 ;;
    *)
      i=$((i + 1))
      if [ "$i" -eq 1 ]; then BUILD="$arg"; else OUT="$arg"; fi
      ;;
  esac
done

cmake -S . -B "$BUILD" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" --target bench_microarch -j "$(nproc)" > /dev/null

TMP="$OUT.tmp"
trap 'rm -f "$TMP"' EXIT

"$BUILD/bench/bench_microarch" \
  --benchmark_filter='SimulatorThroughput|TechniqueStackThroughput|EmulatorStep' \
  --benchmark_format=json \
  --benchmark_out="$TMP" \
  --benchmark_out_format=json

LIB_BUILD=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['context'].get('library_build_type','unknown'))" "$TMP")
if [ "$LIB_BUILD" != "release" ] && [ "$ALLOW_DEBUG" -ne 1 ]; then
  echo "error: benchmark library_build_type is '$LIB_BUILD', not 'release';" >&2
  echo "       refusing to record a baseline measured through a debug-built" >&2
  echo "       Google Benchmark library (rerun with --allow-debug-library" >&2
  echo "       to record anyway, e.g. where the distro package is debug)." >&2
  exit 1
fi
if [ "$LIB_BUILD" != "release" ]; then
  echo "warning: recording baseline against a '$LIB_BUILD' benchmark library" >&2
fi

mv "$TMP" "$OUT"
echo "wrote $OUT"
