#!/bin/sh
# Runs every reproduced table/figure/ablation with its default (publication)
# parameters, writing results into results/.
#
#   scripts/run_all_benches.sh [build-dir] [results-dir]
#
# Sweeps that have been ported onto the campaign engine run through
# bsp-sweep: machine-readable JSONL (one record per simulation) plus the
# summary table, checkpointed so a rerun resumes instead of restarting.
# The remaining drivers run directly until they are ported too.
set -eu

BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"

CAMPAIGNS="
fig11
fig12
abl_slice_width
"

for c in $CAMPAIGNS; do
  echo "== campaign $c"
  "$BUILD/tools/bsp-sweep" --campaign "$c" --out "$OUT/$c.jsonl" \
    > "$OUT/$c.txt" 2>&1
done

BENCHES="
table1_characteristics
table_operand_profile
fig2_lsq_disambiguation
fig4_partial_tag
fig6_early_branch
abl_lsq_depth
abl_way_policy
abl_stability
abl_extensions
abl_seeds
abl_sam
abl_predictor
abl_fp_corner
abl_window
"

for b in $BENCHES; do
  echo "== $b"
  "$BUILD/bench/$b" > "$OUT/$b.txt" 2>&1
done
echo "done: $OUT/"
