#!/bin/sh
# Runs every table/figure/ablation driver with its default (publication)
# parameters, writing one output file per bench into results/.
#
#   scripts/run_all_benches.sh [build-dir] [results-dir]
#
# Defaults assume the standard layout: ./build and ./results.
set -eu

BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"

BENCHES="
table1_characteristics
table_operand_profile
fig2_lsq_disambiguation
fig4_partial_tag
fig6_early_branch
fig11_ipc
fig12_speedup
abl_lsq_depth
abl_way_policy
abl_slice_width
abl_stability
abl_extensions
abl_seeds
abl_sam
abl_predictor
abl_fp_corner
abl_window
"

for b in $BENCHES; do
  echo "== $b"
  "$BUILD/bench/$b" > "$OUT/$b.txt" 2>&1
done
echo "done: $OUT/"
